#include "dataset/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/time_utils.hpp"

namespace mtd {

bool ArrivalProcess::is_day_phase(std::size_t minute_of_day) {
  return circadian_day_phase(minute_of_day);
}

std::uint32_t ArrivalProcess::sample(std::size_t minute_of_day,
                                     Rng& rng) const {
  // Precomputed per-minute table: the logistic ramps + evening bump cost
  // three exp calls when evaluated directly, once per (BS, minute).
  const double activity = circadian_activity_lut(minute_of_day);
  if (activity > kDayThreshold) {
    // Daytime mode: Gaussian around the BS peak rate, modulated by the
    // (mild) intra-day activity fluctuation; sigma = mu / 10 (Sec. 5.1).
    const double mu = bs_->peak_rate * activity;
    const double x = rng.normal(mu, bs_->peak_rate / 10.0);
    return x <= 0.0 ? 0u : static_cast<std::uint32_t>(std::lround(x));
  }
  // Off-peak mode: Pareto with the fixed shape of Sec. 5.1. The continuous
  // draw is floored, so most overnight minutes see zero or few arrivals.
  const double x = rng.pareto(kOffpeakShape, bs_->offpeak_scale);
  return static_cast<std::uint32_t>(std::floor(std::min(x, 1e6)));
}

SessionSampler::SessionSampler(const ServiceProfile& profile)
    : profile_(&profile),
      volume_mixture_(profile.volume_mixture()),
      alpha_(profile.alpha()) {}

SessionSampler::Draw SessionSampler::sample(Rng& rng) const {
  // Full-session volume from the planted mixture, duration from the planted
  // power law v(d) = alpha d^beta inverted at the sampled volume, with
  // log-normal scatter.
  double volume = volume_mixture_.sample(rng);
  volume = std::max(volume, 1e-4);  // >= 0.1 KB
  double duration =
      std::pow(volume / alpha_, 1.0 / profile_->beta) *
      rng.log10_normal(0.0, profile_->duration_sigma);
  duration = std::clamp(duration, 1.0, 6.0 * 3600.0);

  Draw draw{volume, duration, false};

  if (rng.bernoulli(profile_->p_mobile)) {
    const double dwell = dwell_time_distribution().sample(rng);
    if (dwell < draw.duration_s) {
      // The UE leaves the BS before the session completes: the BS only
      // serves the prefix. Volume scales with the served fraction
      // (constant intra-session throughput assumption).
      draw.volume_mb *= dwell / draw.duration_s;
      draw.volume_mb = std::max(draw.volume_mb, 1e-4);
      draw.duration_s = std::max(dwell, 1.0);
      draw.transient = true;
    }
  }
  return draw;
}

TraceGenerator::TraceGenerator(const Network& network, TraceConfig config)
    : network_(&network), config_(config) {
  require(config.num_days >= 1, "TraceGenerator: need at least one day");
  require(config.rate_scale > 0.0, "TraceGenerator: rate_scale must be > 0");
  require(config.weekend_rate_factor > 0.0,
          "TraceGenerator: weekend_rate_factor must be > 0");
  const auto& catalog = service_catalog();
  samplers_.reserve(catalog.size());
  for (const auto& profile : catalog) samplers_.emplace_back(profile);
  service_alias_ = AliasTable(normalized_session_shares());
}

Rng TraceGenerator::bs_day_rng(const BaseStation& bs, std::size_t day) const {
  // One independent stream per (BS, day) keeps generation order-independent.
  return Rng(config_.seed ^ (0x9e3779b97f4a7c15ULL * (bs.id + 1)) ^
             (0xc2b2ae3d27d4eb4fULL * (day + 1)));
}

BaseStation TraceGenerator::day_scaled(const BaseStation& bs,
                                       std::size_t day) const {
  BaseStation scaled = bs;
  double rate = config_.rate_scale;
  if (day_type(day) == DayType::kWeekend) rate *= config_.weekend_rate_factor;
  scaled.peak_rate *= rate;
  scaled.offpeak_scale *= rate;
  return scaled;
}

Session TraceGenerator::sample_session(const BaseStation& bs, std::size_t day,
                                       std::size_t minute_of_day,
                                       Rng& rng) const {
  // Service assignment by Table-1 session shares: O(1) alias draw
  // consuming exactly one uniform, as the CDF inversion it replaced did.
  const std::size_t svc = service_alias_.sample(rng);
  const SessionSampler::Draw draw = samplers_[svc].sample(rng);
  Session session;
  session.bs = bs.id;
  session.day = static_cast<std::uint16_t>(day);
  session.minute_of_day = static_cast<std::uint16_t>(minute_of_day);
  session.service = static_cast<std::uint16_t>(svc);
  session.transient = draw.transient;
  session.volume_mb = draw.volume_mb;
  session.duration_s = draw.duration_s;
  return session;
}

void TraceGenerator::run_bs_day(const BaseStation& bs, std::size_t day,
                                TraceSink& sink) const {
  Rng rng = bs_day_rng(bs, day);
  const BaseStation scaled = day_scaled(bs, day);
  const ArrivalProcess arrivals(scaled);

  for (std::size_t minute = 0; minute < kMinutesPerDay; ++minute) {
    const std::uint32_t count = arrivals.sample(minute, rng);
    sink.on_minute(bs, day, minute, count);
    for (std::uint32_t k = 0; k < count; ++k) {
      sink.on_session(sample_session(bs, day, minute, rng));
    }
  }
}

void TraceGenerator::run(TraceSink& sink) const {
  for (const BaseStation& bs : network_->base_stations()) {
    for (std::size_t day = 0; day < config_.num_days; ++day) {
      run_bs_day(bs, day, sink);
    }
  }
}

}  // namespace mtd
