#include "dataset/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/time_utils.hpp"

namespace mtd {

const char* to_string(GeneratorKernel k) noexcept {
  switch (k) {
    case GeneratorKernel::kScalar:
      return "scalar";
    case GeneratorKernel::kBatch:
      return "batch";
  }
  return "unknown";
}

bool ArrivalProcess::is_day_phase(std::size_t minute_of_day) {
  return circadian_day_phase(minute_of_day);
}

std::uint32_t ArrivalProcess::sample(std::size_t minute_of_day,
                                     Rng& rng) const {
  // Precomputed per-minute table: the logistic ramps + evening bump cost
  // three exp calls when evaluated directly, once per (BS, minute).
  const double activity = circadian_activity_lut(minute_of_day);
  if (activity > kDayThreshold) {
    // Daytime mode: Gaussian around the BS peak rate, modulated by the
    // (mild) intra-day activity fluctuation; sigma = mu / 10 (Sec. 5.1).
    const double mu = bs_->peak_rate * activity;
    const double x = rng.normal(mu, bs_->peak_rate / 10.0);
    return x <= 0.0 ? 0u : static_cast<std::uint32_t>(std::lround(x));
  }
  // Off-peak mode: Pareto with the fixed shape of Sec. 5.1. The continuous
  // draw is floored, so most overnight minutes see zero or few arrivals.
  const double x = rng.pareto(kOffpeakShape, bs_->offpeak_scale);
  return static_cast<std::uint32_t>(std::floor(std::min(x, 1e6)));
}

std::uint32_t ArrivalProcess::sample_batch(std::size_t minute_of_day,
                                           BlockRng& rng) const {
  // Mirrors sample() with the draws taken from the batch tail lane; the
  // count rounding and caps are identical.
  const double activity = circadian_activity_lut(minute_of_day);
  if (activity > kDayThreshold) {
    const double mu = bs_->peak_rate * activity;
    const double x = mu + (bs_->peak_rate / 10.0) * rng.tail_normal();
    return x <= 0.0 ? 0u : static_cast<std::uint32_t>(std::lround(x));
  }
  const double x = rng.tail_pareto(kOffpeakShape, bs_->offpeak_scale);
  return static_cast<std::uint32_t>(std::floor(std::min(x, 1e6)));
}

SessionSampler::SessionSampler(const ServiceProfile& profile)
    : profile_(&profile),
      volume_mixture_(profile.volume_mixture()),
      alpha_(profile.alpha()) {}

SessionSampler::Draw SessionSampler::sample(Rng& rng) const {
  // Full-session volume from the planted mixture, duration from the planted
  // power law v(d) = alpha d^beta inverted at the sampled volume, with
  // log-normal scatter.
  double volume = volume_mixture_.sample(rng);
  volume = std::max(volume, 1e-4);  // >= 0.1 KB
  double duration =
      std::pow(volume / alpha_, 1.0 / profile_->beta) *
      rng.log10_normal(0.0, profile_->duration_sigma);
  duration = std::clamp(duration, 1.0, 6.0 * 3600.0);

  Draw draw{volume, duration, false};

  if (rng.bernoulli(profile_->p_mobile)) {
    const double dwell = dwell_time_distribution().sample(rng);
    if (dwell < draw.duration_s) {
      // The UE leaves the BS before the session completes: the BS only
      // serves the prefix. Volume scales with the served fraction
      // (constant intra-session throughput assumption).
      draw.volume_mb *= dwell / draw.duration_s;
      draw.volume_mb = std::max(draw.volume_mb, 1e-4);
      draw.duration_s = std::max(dwell, 1.0);
      draw.transient = true;
    }
  }
  return draw;
}

void MinuteBlock::resize(std::size_t n) {
  if (service.size() >= n) {
    count = static_cast<std::uint32_t>(n);
    return;
  }
  service.resize(n);
  volume_mb.resize(n);
  duration_s.resize(n);
  start_s.resize(n);
  transient.resize(n);
  scratch.svc.resize(n);
  scratch.u.resize(5 * n);
  scratch.z0.resize(n);
  scratch.z1.resize(n);
  scratch.xv.resize(n);
  scratch.xd.resize(n);
  scratch.midx.resize(n);
  scratch.du.resize(n + 2);  // 2 ceil(n / 2) dwell uniforms at most
  scratch.dz.resize(n + 1);
  scratch.dw.resize(n);
  count = static_cast<std::uint32_t>(n);
}

SessionBlockKernel::SessionBlockKernel(
    std::span<const ServiceProfile> catalog) {
  services_.reserve(catalog.size());
  for (const ServiceProfile& profile : catalog) {
    const Log10NormalMixture mixture = profile.volume_mixture();
    require(mixture.size() <= kScan,
            "SessionBlockKernel: mixture exceeds the scan width");
    Service sv;
    sv.cum = mixture.scan_cum();
    sv.mu = mixture.scan_mu();
    sv.sigma = mixture.scan_sigma();
    sv.log2_alpha = std::log2(profile.alpha());
    sv.inv_beta = 1.0 / profile.beta;
    sv.dur_sigma_l2 = profile.duration_sigma * vec::kLog2Of10;
    sv.p_mobile = profile.p_mobile;
    services_.push_back(sv);
  }
  const Log10Normal& dwell = dwell_time_distribution();
  dwell_mu_ = dwell.mu();
  dwell_sigma_ = dwell.sigma();
}

void SessionBlockKernel::fill(BlockRng& rng, const AliasTable& service_alias,
                              double start_s, std::uint32_t count,
                              MinuteBlock& out) const {
  const std::size_t n = count;
  out.resize(n);
  out.count = count;
  if (n == 0) return;
  auto& s = out.scratch;

  // Fixed block-draw order — part of the v1 batch stream (block_rng.hpp).
  // One fused uniform block covers every per-session column; the slices
  // are consumed as documented in the class comment.
  rng.uniform_block(s.u.data(), 5 * n);
  const double* u_svc = s.u.data();
  const double* u_comp = s.u.data() + n;
  double* ua = s.u.data() + 2 * n;  // BM radius, mapped [0,1) -> (0,1]
  const double* ub = s.u.data() + 3 * n;
  const double* u_mob = s.u.data() + 4 * n;
  service_alias.sample_block(u_svc, s.svc.data(), n);
  for (std::size_t i = 0; i < n; ++i) ua[i] = 1.0 - ua[i];
  vec::normal_pair_block(ua, ub, s.z0.data(), s.z1.data(), n);

  // Phase A: the only gather pass. Resolve service + mixture component
  // and compute both log2 exponent columns; compact the mobile-candidate
  // indices on the way through. The log10 floor at -4 is the scalar
  // path's 1e-4 MB volume floor applied before the exponential (monotone,
  // so equivalent), and feeding the floored volume into the duration law
  // matches the scalar order.
  std::uint32_t m = 0;  // mobile candidates
  for (std::size_t i = 0; i < n; ++i) {
    const Service& sv = services_[s.svc[i]];
    const double u = u_comp[i];
    const std::size_t c = static_cast<std::size_t>(
        (u >= sv.cum[0]) + (u >= sv.cum[1]) + (u >= sv.cum[2]));
    out.service[i] = static_cast<std::uint16_t>(s.svc[i]);
    const double lv =
        std::max(sv.mu[c] + sv.sigma[c] * s.z0[i], -4.0) * vec::kLog2Of10;
    s.xv[i] = lv;  // log2 volume
    s.xd[i] = (lv - sv.log2_alpha) * sv.inv_beta +
              sv.dur_sigma_l2 * s.z1[i];  // log2 duration
    s.midx[m] = static_cast<std::uint32_t>(i);
    m += u_mob[i] < sv.p_mobile ? 1u : 0u;
  }

  // Phase B: block exp2 per column, branch-free clamps and defaults.
  vec::exp2_block(s.xv.data(), out.volume_mb.data(), n);
  vec::exp2_block(s.xd.data(), out.duration_s.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    out.duration_s[i] = std::clamp(out.duration_s[i], 1.0, 6.0 * 3600.0);
    out.start_s[i] = start_s;
    out.transient[i] = 0;
  }
  if (m == 0) return;

  // Phase C: dwell truncation. The m dwell times draw as ceil(m / 2)
  // Box-Muller pairs consumed cos-half-first, then scatter back to the
  // compacted sessions; truncation semantics match SessionSampler::sample
  // exactly.
  const std::size_t pairs = (m + 1) / 2;
  rng.uniform_block(s.du.data(), 2 * pairs);
  for (std::size_t j = 0; j < pairs; ++j) s.du[j] = 1.0 - s.du[j];
  vec::normal_pair_block(s.du.data(), s.du.data() + pairs, s.dz.data(),
                         s.dz.data() + pairs, pairs);
  for (std::size_t j = 0; j < m; ++j) {
    s.dw[j] = dwell_mu_ + dwell_sigma_ * s.dz[j];
  }
  vec::pow10_block(s.dw.data(), s.dw.data(), m);
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t i = s.midx[j];
    const double dwell = s.dw[j];
    if (dwell < out.duration_s[i]) {
      out.volume_mb[i] =
          std::max(out.volume_mb[i] * (dwell / out.duration_s[i]), 1e-4);
      out.duration_s[i] = std::max(dwell, 1.0);
      out.transient[i] = 1;
    }
  }
}

TraceGenerator::TraceGenerator(const Network& network, TraceConfig config)
    : network_(&network), config_(config) {
  require(config.num_days >= 1, "TraceGenerator: need at least one day");
  require(config.rate_scale > 0.0, "TraceGenerator: rate_scale must be > 0");
  require(config.weekend_rate_factor > 0.0,
          "TraceGenerator: weekend_rate_factor must be > 0");
  const auto& catalog = service_catalog();
  samplers_.reserve(catalog.size());
  for (const auto& profile : catalog) samplers_.emplace_back(profile);
  service_alias_ = AliasTable(normalized_session_shares());
  block_kernel_ = SessionBlockKernel(catalog);
}

Rng TraceGenerator::bs_day_rng(const BaseStation& bs, std::size_t day) const {
  // One independent stream per (BS, day) keeps generation order-independent.
  return Rng(config_.seed ^ (0x9e3779b97f4a7c15ULL * (bs.id + 1)) ^
             (0xc2b2ae3d27d4eb4fULL * (day + 1)));
}

BaseStation TraceGenerator::day_scaled(const BaseStation& bs,
                                       std::size_t day) const {
  BaseStation scaled = bs;
  double rate = config_.rate_scale;
  if (day_type(day) == DayType::kWeekend) rate *= config_.weekend_rate_factor;
  scaled.peak_rate *= rate;
  scaled.offpeak_scale *= rate;
  return scaled;
}

Session TraceGenerator::sample_session(const BaseStation& bs, std::size_t day,
                                       std::size_t minute_of_day,
                                       Rng& rng) const {
  // Service assignment by Table-1 session shares: O(1) alias draw
  // consuming exactly one uniform, as the CDF inversion it replaced did.
  const std::size_t svc = service_alias_.sample(rng);
  const SessionSampler::Draw draw = samplers_[svc].sample(rng);
  Session session;
  session.bs = bs.id;
  session.day = static_cast<std::uint16_t>(day);
  session.minute_of_day = static_cast<std::uint16_t>(minute_of_day);
  session.service = static_cast<std::uint16_t>(svc);
  session.transient = draw.transient;
  session.volume_mb = draw.volume_mb;
  session.duration_s = draw.duration_s;
  return session;
}

void TraceGenerator::run_bs_day(const BaseStation& bs, std::size_t day,
                                TraceSink& sink) const {
  Rng rng = bs_day_rng(bs, day);
  const BaseStation scaled = day_scaled(bs, day);
  const ArrivalProcess arrivals(scaled);

  for (std::size_t minute = 0; minute < kMinutesPerDay; ++minute) {
    const std::uint32_t count = arrivals.sample(minute, rng);
    sink.on_minute(bs, day, minute, count);
    for (std::uint32_t k = 0; k < count; ++k) {
      sink.on_session(sample_session(bs, day, minute, rng));
    }
  }
}

void TraceGenerator::sample_minute_block(const BaseStation& day_scaled_bs,
                                         std::size_t day,
                                         std::size_t minute_of_day,
                                         MinuteBlock& out) const {
  // The block stream seeds from the *unconsumed* bs_day_rng state, so the
  // scalar and batch paths share one (seed, bs, day) root.
  BlockRng rng(bs_day_rng(day_scaled_bs, day), minute_of_day);
  const ArrivalProcess arrivals(day_scaled_bs);
  const std::uint32_t count = arrivals.sample_batch(minute_of_day, rng);
  block_kernel_.fill(rng, service_alias_, 60.0 * minute_of_day, count, out);
}

void TraceGenerator::run_bs_day(const BaseStation& bs, std::size_t day,
                                TraceSink& sink,
                                GeneratorKernel kernel) const {
  if (kernel == GeneratorKernel::kScalar) {
    run_bs_day(bs, day, sink);
    return;
  }
  const BaseStation scaled = day_scaled(bs, day);
  MinuteBlock block;
  Session session;
  session.bs = bs.id;
  session.day = static_cast<std::uint16_t>(day);
  for (std::size_t minute = 0; minute < kMinutesPerDay; ++minute) {
    sample_minute_block(scaled, day, minute, block);
    sink.on_minute(bs, day, minute, block.count);
    session.minute_of_day = static_cast<std::uint16_t>(minute);
    for (std::uint32_t i = 0; i < block.count; ++i) {
      session.service = block.service[i];
      session.transient = block.transient[i] != 0;
      session.volume_mb = block.volume_mb[i];
      session.duration_s = block.duration_s[i];
      sink.on_session(session);
    }
  }
}

void TraceGenerator::run(TraceSink& sink) const {
  for (const BaseStation& bs : network_->base_stations()) {
    for (std::size_t day = 0; day < config_.num_days; ++day) {
      run_bs_day(bs, day, sink);
    }
  }
}

}  // namespace mtd
