// Synthetic radio access network topology.
//
// Stands in for the paper's 282,000-BS nationwide 4G/5G NSA RAN: a set of
// base stations with heterogeneous loads (classified into deciles as in
// Sec. 4.1), urbanization levels, metropolitan-area membership and radio
// access technology. All counts are configurable so tests can run on tiny
// networks and benches on larger ones.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace mtd {

enum class Region : std::uint8_t { kUrban, kSemiUrban, kRural };
enum class Rat : std::uint8_t { k4G, k5G };

[[nodiscard]] const char* to_string(Region r) noexcept;
[[nodiscard]] const char* to_string(Rat r) noexcept;

inline constexpr std::size_t kNumRegions = 3;
inline constexpr std::size_t kNumCities = 5;
inline constexpr std::size_t kNumDeciles = 10;

/// One base station of the synthetic RAN.
struct BaseStation {
  std::uint32_t id = 0;
  /// Load decile, 0 (lightest) .. 9 (busiest).
  std::uint8_t decile = 0;
  Region region = Region::kUrban;
  /// Metropolitan area 0..kNumCities-1, or kNoCity outside the 5 largest.
  std::uint8_t city = kNoCity;
  Rat rat = Rat::k4G;

  /// Mean per-minute session arrival rate during the daytime peak phase.
  double peak_rate = 1.0;
  /// Scale of the Pareto off-peak arrival distribution.
  double offpeak_scale = 0.1;

  static constexpr std::uint8_t kNoCity = 255;
};

struct NetworkConfig {
  std::size_t num_bs = 100;
  /// Fraction of BSs on 5G gNodeBs (NSA deployment).
  double fraction_5g = 0.25;
  /// Daytime peak arrival rate (sessions/minute) of the *average BS of the
  /// first and last decile*; rates grow exponentially across deciles, as
  /// observed in Sec. 5.1 (1.21 -> 71 sessions/minute).
  double first_decile_rate = 1.21;
  double last_decile_rate = 71.0;
  /// Off-peak Pareto scale relative to the peak rate.
  double offpeak_scale_ratio = 0.05;
  /// Relative jitter of per-BS rates within a decile.
  double rate_jitter = 0.10;
};

/// The synthetic RAN.
class Network {
 public:
  /// Builds a network with deterministic structure given the RNG state:
  /// BSs are assigned load deciles uniformly, regions with urban bias for
  /// high deciles, city membership for urban BSs, and RAT per
  /// `fraction_5g`.
  static Network build(const NetworkConfig& config, Rng& rng);

  /// Wraps an explicit BS list: externally ingested topologies, hand-built
  /// test fixtures, and networks smaller than one BS per decile (build()
  /// requires >= kNumDeciles). BS ids are rewritten to the list index —
  /// the library indexes `network[session.bs]` throughout.
  static Network from_base_stations(std::vector<BaseStation> bs,
                                    const NetworkConfig& config = {});

  [[nodiscard]] const std::vector<BaseStation>& base_stations() const noexcept {
    return bs_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return bs_.size(); }
  [[nodiscard]] const BaseStation& operator[](std::size_t i) const noexcept {
    return bs_[i];
  }
  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }

  /// All BS ids in a given decile / region / city / RAT.
  [[nodiscard]] std::vector<std::uint32_t> in_decile(std::uint8_t d) const;
  [[nodiscard]] std::vector<std::uint32_t> in_region(Region r) const;
  [[nodiscard]] std::vector<std::uint32_t> in_city(std::uint8_t city) const;
  [[nodiscard]] std::vector<std::uint32_t> with_rat(Rat r) const;

  /// The decile-average peak rate (the mu_{c,w} of Sec. 5.1 per class).
  [[nodiscard]] double decile_peak_rate(std::uint8_t d) const;

 private:
  NetworkConfig config_;
  std::vector<BaseStation> bs_;
};

}  // namespace mtd
