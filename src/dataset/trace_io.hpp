// Session-trace serialization: CSV export and ingestion.
//
// The library's analyses run on any TraceSink-fed dataset, not only the
// built-in synthetic substrate. This module writes session traces to a
// simple CSV schema and streams them back, so externally collected
// session-level data (or traces produced by other tools) can be run through
// the same aggregation, characterization and fitting pipeline.
//
// Schema (header required):
//   bs,service,day,minute_of_day,volume_mb,duration_s
// `service` is the catalogue name (quoted if it contains commas).
#pragma once

#include <memory>
#include <string>

#include "dataset/generator.hpp"
#include "dataset/measurement.hpp"

namespace mtd {

/// Writes sessions to CSV as they arrive; also forwards per-minute counts
/// when chained in front of another sink.
class SessionCsvWriter final : public TraceSink {
 public:
  /// Opens `path` for writing and emits the header. `forward` (optional)
  /// receives every callback after it is recorded.
  explicit SessionCsvWriter(const std::string& path,
                            TraceSink* forward = nullptr);
  ~SessionCsvWriter() override;

  SessionCsvWriter(const SessionCsvWriter&) = delete;
  SessionCsvWriter& operator=(const SessionCsvWriter&) = delete;

  void on_minute(const BaseStation& bs, std::size_t day,
                 std::size_t minute_of_day, std::uint32_t count) override;
  void on_session(const Session& session) override;

  /// Flushes and closes the file (also done by the destructor). Throws
  /// Error when any buffered write failed (full disk, revoked path, I/O
  /// error) — a silently truncated trace must not pass for a complete one.
  /// The destructor cannot throw; it reports the failure to stderr instead,
  /// so call close() explicitly wherever the trace matters.
  void close();

  /// True once any write on the underlying stream has failed.
  [[nodiscard]] bool write_failed() const noexcept;

  [[nodiscard]] std::uint64_t sessions_written() const noexcept {
    return sessions_;
  }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::string path_;
  TraceSink* forward_;
  std::uint64_t sessions_ = 0;
};

/// Streams a session CSV into a TraceSink. Per-minute arrival counts are
/// reconstructed from the session rows (every (BS, day, minute) triple with
/// at least one session gets its count; silent minutes are emitted as zero
/// for the covered (BS, day) pairs so arrival statistics stay meaningful).
///
/// `network` supplies the BS metadata (decile, region, city, RAT); rows
/// whose BS id is outside the network are rejected with ParseError.
/// Returns the number of sessions replayed.
std::uint64_t replay_csv_trace(const std::string& path,
                               const Network& network, TraceSink& sink);

}  // namespace mtd
