// Ground-truth session generation: the synthetic stand-in for the paper's
// RAN + gateway probe measurements.
//
// For every (BS, day, minute) the generator draws a number of new sessions
// from the planted bi-modal arrival process (circadian day/night switching,
// Sec. 4.1), assigns each session to a service according to the Table-1
// shares, and samples its full-session volume from the planted log10-normal
// mixture and its duration from the planted power law. In-transit users are
// modeled by dwell-time truncation, producing the transient sessions that
// the paper highlights (insight (e)).
#pragma once

#include <cstdint>
#include <functional>

#include "common/alias_table.hpp"
#include "common/rng.hpp"
#include "dataset/network.hpp"
#include "dataset/service_catalog.hpp"

namespace mtd {

/// One generated transport-layer session.
struct Session {
  std::uint32_t bs = 0;
  std::uint16_t service = 0;
  std::uint16_t day = 0;
  std::uint16_t minute_of_day = 0;
  bool transient = false;
  /// Traffic volume served by this BS for this session, MB.
  double volume_mb = 0.0;
  /// Time the session spent at this BS, seconds.
  double duration_s = 0.0;

  [[nodiscard]] double throughput_mbps() const noexcept {
    return duration_s > 0.0 ? 8.0 * volume_mb / duration_s : 0.0;
  }
};

/// Samples the planted per-minute arrival count of one BS: Gaussian
/// (mean = peak_rate * activity, sigma = peak_rate / 10) during the daytime
/// phase, Pareto (shape 1.765, scale = offpeak_scale) overnight.
class ArrivalProcess {
 public:
  /// The fixed Pareto shape of the off-peak mode (Sec. 5.1).
  static constexpr double kOffpeakShape = 1.765;
  /// Activity threshold separating the two circadian phases.
  static constexpr double kDayThreshold = 0.5;

  explicit ArrivalProcess(const BaseStation& bs) : bs_(&bs) {}

  /// Number of sessions arriving during `minute_of_day`.
  [[nodiscard]] std::uint32_t sample(std::size_t minute_of_day,
                                     Rng& rng) const;

  /// True when the minute falls in the daytime (Gaussian) phase.
  [[nodiscard]] static bool is_day_phase(std::size_t minute_of_day);

 private:
  const BaseStation* bs_;
};

/// Samples one session of a service from its ground-truth profile.
class SessionSampler {
 public:
  explicit SessionSampler(const ServiceProfile& profile);

  struct Draw {
    double volume_mb;
    double duration_s;
    bool transient;
  };

  [[nodiscard]] Draw sample(Rng& rng) const;

  [[nodiscard]] const ServiceProfile& profile() const noexcept {
    return *profile_;
  }

 private:
  const ServiceProfile* profile_;
  Log10NormalMixture volume_mixture_;
  double alpha_;
};

struct TraceConfig {
  /// Number of simulated days; day 0 is a Monday.
  std::size_t num_days = 7;
  std::uint64_t seed = 42;
  /// Global multiplier on arrival rates (load scaling for quick tests).
  double rate_scale = 1.0;
  /// Arrival-rate multiplier on weekends. BS-level loads are known to dip
  /// on weekends ([14] in the paper) even though the *session-level*
  /// statistics stay invariant (Sec. 4.4) - fewer sessions, same behavior.
  double weekend_rate_factor = 0.85;
};

/// Receives the generated trace. `on_minute` is called once per
/// (BS, day, minute) with the total arrival count (including zero);
/// `on_session` once per session.
struct TraceSink {
  virtual ~TraceSink() = default;
  virtual void on_minute(const BaseStation& bs, std::size_t day,
                         std::size_t minute_of_day, std::uint32_t count) = 0;
  virtual void on_session(const Session& session) = 0;
};

/// Drives the full generation over a network and a number of days.
class TraceGenerator {
 public:
  TraceGenerator(const Network& network, TraceConfig config);

  /// Generates the whole trace into `sink`. Deterministic given the config
  /// seed and network.
  void run(TraceSink& sink) const;

  /// Generates only one (BS, day); used by streaming consumers and tests.
  void run_bs_day(const BaseStation& bs, std::size_t day,
                  TraceSink& sink) const;

  // -- streaming primitives ---------------------------------------------------
  // The per-(BS, day) generation stream is defined by three pieces that the
  // batch path above composes; they are public so streaming front-ends
  // (src/engine) can interleave many BSs minute-by-minute while consuming
  // each (BS, day) RNG stream in exactly the batch order. Any reordering
  // across BSs is therefore bit-identical to run()/run_bs_day() per BS.

  /// The deterministic RNG stream of one (BS, day). Independent per pair, so
  /// generation order across pairs does not matter.
  [[nodiscard]] Rng bs_day_rng(const BaseStation& bs, std::size_t day) const;

  /// The BS with its arrival rates scaled for `day` (global rate_scale plus
  /// the weekend factor).
  [[nodiscard]] BaseStation day_scaled(const BaseStation& bs,
                                       std::size_t day) const;

  /// Draws the next session arriving at (bs, day, minute), advancing `rng`
  /// exactly as the batch generator does (service pick, volume, duration,
  /// transient truncation).
  [[nodiscard]] Session sample_session(const BaseStation& bs, std::size_t day,
                                       std::size_t minute_of_day,
                                       Rng& rng) const;

  [[nodiscard]] const Network& network() const noexcept { return *network_; }
  [[nodiscard]] const TraceConfig& config() const noexcept { return config_; }

 private:
  const Network* network_;
  TraceConfig config_;
  std::vector<SessionSampler> samplers_;
  AliasTable service_alias_;  // O(1) Table-1 share draws
};

}  // namespace mtd
