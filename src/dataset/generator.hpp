// Ground-truth session generation: the synthetic stand-in for the paper's
// RAN + gateway probe measurements.
//
// For every (BS, day, minute) the generator draws a number of new sessions
// from the planted bi-modal arrival process (circadian day/night switching,
// Sec. 4.1), assigns each session to a service according to the Table-1
// shares, and samples its full-session volume from the planted log10-normal
// mixture and its duration from the planted power law. In-transit users are
// modeled by dwell-time truncation, producing the transient sessions that
// the paper highlights (insight (e)).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/alias_table.hpp"
#include "common/batch_rng/block_rng.hpp"
#include "common/rng.hpp"
#include "dataset/network.hpp"
#include "dataset/service_catalog.hpp"

namespace mtd {

/// Which generation kernel a front-end drives (EngineConfig::kernel).
///
/// kScalar is the reference implementation: one mtd::Rng draw at a time,
/// bit-identical to every pre-batch release for any seed. kBatch fills
/// SoA minute buffers through the BlockRng lanes — 2-4x the sessions/s,
/// with its own versioned seed->stream mapping (BlockRng::kStreamVersion;
/// the two kernels agree statistically, never bit-for-bit).
enum class GeneratorKernel : std::uint8_t { kScalar, kBatch };

[[nodiscard]] const char* to_string(GeneratorKernel k) noexcept;

/// One generated transport-layer session.
struct Session {
  std::uint32_t bs = 0;
  std::uint16_t service = 0;
  std::uint16_t day = 0;
  std::uint16_t minute_of_day = 0;
  bool transient = false;
  /// Traffic volume served by this BS for this session, MB.
  double volume_mb = 0.0;
  /// Time the session spent at this BS, seconds.
  double duration_s = 0.0;

  [[nodiscard]] double throughput_mbps() const noexcept {
    return duration_s > 0.0 ? 8.0 * volume_mb / duration_s : 0.0;
  }
};

/// Samples the planted per-minute arrival count of one BS: Gaussian
/// (mean = peak_rate * activity, sigma = peak_rate / 10) during the daytime
/// phase, Pareto (shape 1.765, scale = offpeak_scale) overnight.
class ArrivalProcess {
 public:
  /// The fixed Pareto shape of the off-peak mode (Sec. 5.1).
  static constexpr double kOffpeakShape = 1.765;
  /// Activity threshold separating the two circadian phases.
  static constexpr double kDayThreshold = 0.5;

  explicit ArrivalProcess(const BaseStation& bs) : bs_(&bs) {}

  /// Number of sessions arriving during `minute_of_day`.
  [[nodiscard]] std::uint32_t sample(std::size_t minute_of_day,
                                     Rng& rng) const;

  /// Batch-stream arrival draw: same two-phase model, drawn from the
  /// BlockRng tail lane (day phase: one tail_normal; night: one
  /// tail_pareto). Part of the versioned batch stream — it is the first
  /// tail draw of every minute block.
  [[nodiscard]] std::uint32_t sample_batch(std::size_t minute_of_day,
                                           BlockRng& rng) const;

  /// True when the minute falls in the daytime (Gaussian) phase.
  [[nodiscard]] static bool is_day_phase(std::size_t minute_of_day);

 private:
  const BaseStation* bs_;
};

/// Samples one session of a service from its ground-truth profile.
class SessionSampler {
 public:
  explicit SessionSampler(const ServiceProfile& profile);

  struct Draw {
    double volume_mb;
    double duration_s;
    bool transient;
  };

  [[nodiscard]] Draw sample(Rng& rng) const;

  [[nodiscard]] const ServiceProfile& profile() const noexcept {
    return *profile_;
  }

 private:
  const ServiceProfile* profile_;
  Log10NormalMixture volume_mixture_;
  double alpha_;
};

/// Structure-of-arrays buffers of one generated minute: column i across
/// the output vectors is session i of the minute, in batch draw order.
/// Workers convert these columns to events just before the ring push; the
/// scratch columns carry the intermediate uniforms/deviates/exponents so a
/// reused MinuteBlock allocates only while warming up.
struct MinuteBlock {
  std::uint32_t count = 0;

  // -- outputs ---------------------------------------------------------------
  std::vector<std::uint16_t> service;
  std::vector<double> volume_mb;
  std::vector<double> duration_s;
  /// Session start, seconds since day start (the minute boundary: the
  /// scalar model has minute granularity, so all sessions of a block
  /// share it; kept per-session so downstream consumers stay columnar).
  std::vector<double> start_s;
  std::vector<std::uint8_t> transient;

  // -- scratch ---------------------------------------------------------------
  struct Scratch {
    std::vector<std::uint32_t> svc;   // alias picks (widened)
    std::vector<double> u;            // fused uniform columns (5 n)
    std::vector<double> z0, z1;       // normal deviates
    std::vector<double> xv, xd;       // log2 volume / duration exponents
    std::vector<std::uint32_t> midx;  // compacted mobile-candidate indices
    std::vector<double> du;           // dwell Box-Muller uniforms
    std::vector<double> dz;           // dwell normal deviates
    std::vector<double> dw;           // dwell times, seconds
  } scratch;

  /// Grows every column to hold `n` sessions (never shrinks).
  void resize(std::size_t n);
};

/// Flattened per-service sampling parameters driving the SoA minute fill.
///
/// The fill is phase-split so the arithmetic-heavy loops carry no gathers:
/// (A) one gather pass resolves each session's service/component and
/// computes the log2 exponent columns, (B) block exp2 + branch-free
/// clamps, (C) the data-dependent dwell truncation over the compacted
/// mobile candidates. The per-minute draw order is part of the versioned
/// batch stream (BlockRng v1): one arrival tail draw; one fused uniform
/// block of 5 n (columns: service pick, component pick, Box-Muller
/// radius, Box-Muller angle, mobility); then — with m = the number of
/// mobile candidates, in session order — one uniform block of
/// 2 ceil(m / 2) feeding ceil(m / 2) Box-Muller pairs whose deviates are
/// consumed cos-half-first for the m dwell times.
class SessionBlockKernel {
 public:
  SessionBlockKernel() = default;
  explicit SessionBlockKernel(std::span<const ServiceProfile> catalog);

  /// Fills `out` with `count` sessions drawn from `rng` (service picked
  /// through `service_alias`). `start_s` stamps every session's start.
  void fill(BlockRng& rng, const AliasTable& service_alias, double start_s,
            std::uint32_t count, MinuteBlock& out) const;

 private:
  static constexpr std::size_t kScan = Log10NormalMixture::kScanComponents;

  struct Service {
    std::array<double, kScan> cum;    // scan thresholds (padded 2.0)
    std::array<double, kScan> mu;     // component log10 locations
    std::array<double, kScan> sigma;  // component log10 scales
    double log2_alpha = 0.0;          // log2 of the power-law alpha
    double inv_beta = 1.0;            // 1 / beta
    double dur_sigma_l2 = 0.0;        // duration_sigma * log2(10)
    double p_mobile = 0.0;
  };

  std::vector<Service> services_;
  double dwell_mu_ = 0.0;     // shared dwell-time log10 location
  double dwell_sigma_ = 0.0;  // shared dwell-time log10 scale
};

struct TraceConfig {
  /// Number of simulated days; day 0 is a Monday.
  std::size_t num_days = 7;
  std::uint64_t seed = 42;
  /// Global multiplier on arrival rates (load scaling for quick tests).
  double rate_scale = 1.0;
  /// Arrival-rate multiplier on weekends. BS-level loads are known to dip
  /// on weekends ([14] in the paper) even though the *session-level*
  /// statistics stay invariant (Sec. 4.4) - fewer sessions, same behavior.
  double weekend_rate_factor = 0.85;
};

/// Receives the generated trace. `on_minute` is called once per
/// (BS, day, minute) with the total arrival count (including zero);
/// `on_session` once per session.
struct TraceSink {
  virtual ~TraceSink() = default;
  virtual void on_minute(const BaseStation& bs, std::size_t day,
                         std::size_t minute_of_day, std::uint32_t count) = 0;
  virtual void on_session(const Session& session) = 0;
};

/// Drives the full generation over a network and a number of days.
class TraceGenerator {
 public:
  TraceGenerator(const Network& network, TraceConfig config);

  /// Generates the whole trace into `sink`. Deterministic given the config
  /// seed and network.
  void run(TraceSink& sink) const;

  /// Generates only one (BS, day); used by streaming consumers and tests.
  void run_bs_day(const BaseStation& bs, std::size_t day,
                  TraceSink& sink) const;

  /// Same, through the selected kernel: kScalar is run_bs_day above,
  /// kBatch drives sample_minute_block and forwards every column as a
  /// Session. The two streams differ bit-wise but agree statistically
  /// (tests/test_kernel_parity.cpp).
  void run_bs_day(const BaseStation& bs, std::size_t day, TraceSink& sink,
                  GeneratorKernel kernel) const;

  // -- streaming primitives ---------------------------------------------------
  // The per-(BS, day) generation stream is defined by three pieces that the
  // batch path above composes; they are public so streaming front-ends
  // (src/engine) can interleave many BSs minute-by-minute while consuming
  // each (BS, day) RNG stream in exactly the batch order. Any reordering
  // across BSs is therefore bit-identical to run()/run_bs_day() per BS.

  /// The deterministic RNG stream of one (BS, day). Independent per pair, so
  /// generation order across pairs does not matter.
  [[nodiscard]] Rng bs_day_rng(const BaseStation& bs, std::size_t day) const;

  /// The BS with its arrival rates scaled for `day` (global rate_scale plus
  /// the weekend factor).
  [[nodiscard]] BaseStation day_scaled(const BaseStation& bs,
                                       std::size_t day) const;

  /// Draws the next session arriving at (bs, day, minute), advancing `rng`
  /// exactly as the batch generator does (service pick, volume, duration,
  /// transient truncation).
  [[nodiscard]] Session sample_session(const BaseStation& bs, std::size_t day,
                                       std::size_t minute_of_day,
                                       Rng& rng) const;

  // -- batch kernel (SoA minute path) -----------------------------------------

  /// Fills `out` with every session of (bs, day, minute) through the SoA
  /// batch kernel. `day_scaled_bs` must be day_scaled(bs, day) — passed in
  /// so per-minute callers scale once per day, not per minute. Each minute
  /// is an independent BlockRng stream (v1 mapping seeded from
  /// bs_day_rng's unconsumed state), so minutes can be generated in any
  /// order and resume needs no batch RNG cursor.
  void sample_minute_block(const BaseStation& day_scaled_bs, std::size_t day,
                           std::size_t minute_of_day, MinuteBlock& out) const;

  [[nodiscard]] const SessionBlockKernel& block_kernel() const noexcept {
    return block_kernel_;
  }

  [[nodiscard]] const Network& network() const noexcept { return *network_; }
  [[nodiscard]] const TraceConfig& config() const noexcept { return config_; }

 private:
  const Network* network_;
  TraceConfig config_;
  std::vector<SessionSampler> samplers_;
  AliasTable service_alias_;       // O(1) Table-1 share draws
  SessionBlockKernel block_kernel_;  // flattened params of the SoA path
};

}  // namespace mtd
