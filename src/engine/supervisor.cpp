#include "engine/supervisor.hpp"

#include <chrono>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/time_utils.hpp"

namespace mtd {

namespace {

/// Holds every delivered event of the not-yet-checkpointed simulated
/// minutes and replays them downstream in minute order once they commit.
/// Within a minute events flush in arrival order, so each BS's subsequence
/// is exactly its generation order — the downstream sink cannot tell it
/// apart from an unfailed direct run. Keying by absolute minute (not day)
/// lets mid-day checkpoints flush a partial day's committed prefix while
/// holding back only the tail past the checkpoint.
class CommitBuffer final : public TraceSink {
 public:
  explicit CommitBuffer(TraceSink& downstream) : downstream_(&downstream) {}

  void on_minute(const BaseStation& bs, std::size_t day,
                 std::size_t minute_of_day, std::uint32_t count) override {
    Event ev;
    ev.is_minute = true;
    ev.bs = &bs;
    ev.day = day;
    ev.minute_of_day = minute_of_day;
    ev.count = count;
    pending_[key(day, minute_of_day)].push_back(std::move(ev));
  }

  void on_session(const Session& session) override {
    Event ev;
    ev.is_minute = false;
    ev.session = session;
    pending_[key(session.day, session.minute_of_day)].push_back(
        std::move(ev));
  }

  /// Flushes every buffered minute below the checkpoint's clock_minute
  /// downstream, oldest first.
  void commit_through(std::uint64_t clock_minute) {
    while (!pending_.empty() && pending_.begin()->first < clock_minute) {
      for (const Event& ev : pending_.begin()->second) {
        if (ev.is_minute) {
          downstream_->on_minute(*ev.bs, ev.day, ev.minute_of_day, ev.count);
        } else {
          downstream_->on_session(ev.session);
        }
      }
      pending_.erase(pending_.begin());
    }
  }

  /// Drops the uncommitted tail after a failed attempt; the resume
  /// regenerates it from the checkpoint.
  void discard() { pending_.clear(); }

 private:
  struct Event {
    bool is_minute = false;
    const BaseStation* bs = nullptr;  // minutes only; network-owned
    std::size_t day = 0;
    std::size_t minute_of_day = 0;
    std::uint32_t count = 0;
    Session session;
  };

  static std::uint64_t key(std::size_t day, std::size_t minute_of_day) {
    return static_cast<std::uint64_t>(day) * kMinutesPerDay + minute_of_day;
  }

  TraceSink* downstream_;
  std::map<std::uint64_t, std::vector<Event>> pending_;
};

}  // namespace

Json RunReport::to_json() const {
  JsonObject obj;
  obj.emplace("succeeded", succeeded);
  obj.emplace("attempts", attempts.size());
  obj.emplace("restarts", restarts());
  JsonArray arr;
  for (const SupervisorAttempt& a : attempts) {
    JsonObject at;
    at.emplace("attempt", a.attempt);
    at.emplace("start_day", a.start_day);
    at.emplace("reached_day", a.reached_day);
    at.emplace("start_minute", static_cast<double>(a.start_minute));
    at.emplace("reached_minute", static_cast<double>(a.reached_minute));
    at.emplace("error", a.error);
    at.emplace("retryable", a.retryable);
    at.emplace("backoff_ms", a.backoff_ms);
    arr.emplace_back(std::move(at));
  }
  obj.emplace("attempt_log", Json(std::move(arr)));
  if (succeeded) {
    obj.emplace("telemetry", result.telemetry.to_json());
    obj.emplace("next_day", result.checkpoint.next_day);
    obj.emplace("clock_minute",
                static_cast<double>(result.checkpoint.clock_minute));
    obj.emplace("complete", result.checkpoint.complete());
  }
  return Json(std::move(obj));
}

Supervisor::Supervisor(const Network& network, const TraceConfig& trace,
                       EngineConfig engine_config, SupervisorConfig config)
    : network_(&network),
      trace_(trace),
      engine_config_(std::move(engine_config)),
      config_(config) {
  require(config_.backoff_multiplier >= 1.0,
          "Supervisor: backoff_multiplier must be >= 1");
  require(config_.backoff_jitter >= 0.0,
          "Supervisor: backoff_jitter must be >= 0");
}

RunReport Supervisor::run(TraceSink& sink) {
  return supervise(std::nullopt, sink);
}

RunReport Supervisor::resume(const EngineCheckpoint& from, TraceSink& sink) {
  return supervise(from, sink);
}

RunReport Supervisor::supervise(std::optional<EngineCheckpoint> from,
                                TraceSink& sink) {
  RunReport report;
  CommitBuffer buffer(sink);
  TraceSink& engine_sink =
      config_.buffer_uncommitted ? static_cast<TraceSink&>(buffer) : sink;
  std::optional<EngineCheckpoint> last_good = std::move(from);
  Rng backoff_rng(
      config_.backoff_seed.value_or(trace_.seed ^ 0x73757076ULL /* "supv" */));
  double backoff_ms = config_.backoff_initial_ms;
  const std::size_t max_attempts = config_.max_restarts + 1;

  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    SupervisorAttempt record;
    record.attempt = attempt;
    record.start_day = last_good ? last_good->next_day : 0;
    record.reached_day = record.start_day;
    record.start_minute = last_good ? last_good->clock_minute : 0;
    record.reached_minute = record.start_minute;

    StreamEngine engine(*network_, trace_, engine_config_);
    if (snapshot_callback_) engine.on_snapshot(snapshot_callback_);
    engine.on_checkpoint([&](const EngineCheckpoint& cp) {
      // Flush committed minutes downstream BEFORE adopting the checkpoint
      // as the restart point: a resume must never skip a minute the
      // downstream sink has not fully received.
      if (config_.buffer_uncommitted) buffer.commit_through(cp.clock_minute);
      last_good = cp;
      record.reached_day = cp.next_day;
      record.reached_minute = cp.clock_minute;
    });

    try {
      report.result = last_good ? engine.resume(*last_good, engine_sink)
                                : engine.run(engine_sink);
      report.succeeded = true;
      report.attempts.push_back(std::move(record));
      return report;
    } catch (const Error& e) {
      record.error = e.what();
      record.retryable = e.retryable();
    } catch (const std::exception& e) {
      // Foreign exceptions (user sink code, injected kThrow faults) carry
      // no retryability contract: never restart on them.
      record.error = e.what();
      record.retryable = false;
    }

    if (config_.buffer_uncommitted) buffer.discard();
    const bool retry = record.retryable && attempt < max_attempts;
    if (retry) {
      record.backoff_ms =
          backoff_ms * (1.0 + config_.backoff_jitter * backoff_rng.uniform());
    }
    report.attempts.push_back(std::move(record));
    if (!retry) return report;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        report.attempts.back().backoff_ms));
    backoff_ms *= config_.backoff_multiplier;
  }
  return report;
}

}  // namespace mtd
