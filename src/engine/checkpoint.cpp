#include "engine/checkpoint.hpp"

#include <bit>
#include <charconv>

#include "common/error.hpp"
#include "common/time_utils.hpp"
#include "common/fault.hpp"

namespace mtd {

namespace {

constexpr const char* kFormat = "mtd-engine-checkpoint-v1";

/// 64-bit values (seeds, fingerprints) are stored as hex strings: JSON
/// numbers are doubles and would silently lose bits above 2^53.
std::string to_hex(std::uint64_t v) {
  char buf[19] = "0x";
  const auto [ptr, ec] = std::to_chars(buf + 2, buf + sizeof(buf), v, 16);
  return std::string(buf, ptr);
}

std::uint64_t from_hex(const std::string& s, const char* what) {
  if (s.size() < 3 || s[0] != '0' || s[1] != 'x') {
    throw ParseError(std::string(what) + ": expected 0x-prefixed hex, got '" +
                     s + "'");
  }
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data() + 2, s.data() + s.size(), v, 16);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError(std::string(what) + ": bad hex value '" + s + "'");
  }
  return v;
}

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
}

}  // namespace

std::uint64_t network_fingerprint(const Network& network) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  fnv_mix(h, network.size());
  for (const BaseStation& bs : network.base_stations()) {
    fnv_mix(h, bs.id);
    fnv_mix(h, (static_cast<std::uint64_t>(bs.decile) << 24) |
                   (static_cast<std::uint64_t>(bs.region) << 16) |
                   (static_cast<std::uint64_t>(bs.city) << 8) |
                   static_cast<std::uint64_t>(bs.rat));
    fnv_mix(h, std::bit_cast<std::uint64_t>(bs.peak_rate));
    fnv_mix(h, std::bit_cast<std::uint64_t>(bs.offpeak_scale));
  }
  return h;
}

Json EngineCheckpoint::to_json() const {
  JsonObject obj;
  obj.emplace("format", kFormat);
  obj.emplace("seed", to_hex(seed));
  obj.emplace("num_days", num_days);
  obj.emplace("rate_scale", rate_scale);
  obj.emplace("weekend_rate_factor", weekend_rate_factor);
  obj.emplace("network_fingerprint", to_hex(network_fingerprint));
  obj.emplace("next_day", next_day);
  obj.emplace("clock_minute", static_cast<double>(clock_minute));
  // Cumulative counters are hex-encoded like the seeds: a long-lived engine
  // can push them past 2^53, where JSON doubles silently round.
  obj.emplace("sessions_emitted", to_hex(sessions_emitted));
  obj.emplace("minutes_emitted", to_hex(minutes_emitted));
  obj.emplace("segments_emitted", to_hex(segments_emitted));
  obj.emplace("packets_emitted", to_hex(packets_emitted));
  obj.emplace("volume_mb", volume_mb);
  // The RNG-stream state of every shard: streams re-seed per (BS, day), so
  // (seed, next_day) pins them; recorded explicitly for forward
  // compatibility with engines that keep raw mid-day RNG state.
  JsonObject rng;
  rng.emplace("kind", "per-bs-day-reseed");
  rng.emplace("seed", to_hex(seed));
  rng.emplace("next_day", next_day);
  obj.emplace("rng_streams", Json(std::move(rng)));
  JsonArray shard_arr;
  for (const EngineShardCursor& s : shards) {
    JsonObject sh;
    sh.emplace("shard", s.shard);
    sh.emplace("next_day", s.next_day);
    sh.emplace("sessions_produced", to_hex(s.sessions_produced));
    shard_arr.emplace_back(std::move(sh));
  }
  obj.emplace("shards", Json(std::move(shard_arr)));
  return Json(std::move(obj));
}

EngineCheckpoint EngineCheckpoint::from_json(const Json& json) {
  if (!json.contains("format") ||
      json.at("format").as_string() != kFormat) {
    throw ParseError("EngineCheckpoint: not a " + std::string(kFormat) +
                     " file");
  }
  EngineCheckpoint cp;
  cp.seed = from_hex(json.at("seed").as_string(), "EngineCheckpoint.seed");
  cp.num_days = static_cast<std::size_t>(json.at("num_days").as_number());
  cp.rate_scale = json.at("rate_scale").as_number();
  cp.weekend_rate_factor = json.at("weekend_rate_factor").as_number();
  cp.network_fingerprint =
      from_hex(json.at("network_fingerprint").as_string(),
               "EngineCheckpoint.network_fingerprint");
  cp.next_day = static_cast<std::size_t>(json.at("next_day").as_number());
  cp.clock_minute =
      static_cast<std::uint64_t>(json.at("clock_minute").as_number());
  cp.sessions_emitted = from_hex(json.at("sessions_emitted").as_string(),
                                 "EngineCheckpoint.sessions_emitted");
  cp.minutes_emitted = from_hex(json.at("minutes_emitted").as_string(),
                                "EngineCheckpoint.minutes_emitted");
  // Absent in files written before the typed event plane; those replays
  // streamed no segment or packet events.
  if (json.contains("segments_emitted")) {
    cp.segments_emitted = from_hex(json.at("segments_emitted").as_string(),
                                   "EngineCheckpoint.segments_emitted");
  }
  if (json.contains("packets_emitted")) {
    cp.packets_emitted = from_hex(json.at("packets_emitted").as_string(),
                                  "EngineCheckpoint.packets_emitted");
  }
  cp.volume_mb = json.at("volume_mb").as_number();
  if (cp.clock_minute != cp.next_day * kMinutesPerDay) {
    throw ParseError(
        "EngineCheckpoint: clock_minute is not at the next_day boundary");
  }
  for (const Json& sh : json.at("shards").as_array()) {
    EngineShardCursor cursor;
    cursor.shard = static_cast<std::size_t>(sh.at("shard").as_number());
    cursor.next_day = static_cast<std::size_t>(sh.at("next_day").as_number());
    cursor.sessions_produced = from_hex(
        sh.at("sessions_produced").as_string(), "EngineShardCursor.sessions");
    if (cursor.next_day != cp.next_day) {
      throw ParseError("EngineCheckpoint: shard " +
                       std::to_string(cursor.shard) +
                       " is not at the global day boundary");
    }
    cp.shards.push_back(cursor);
  }
  return cp;
}

void EngineCheckpoint::save(const std::string& path,
                            FaultInjector* fault) const {
  fault_fire(fault, "checkpoint.write");
  write_file_atomic(path, to_json().dump(2));
}

EngineCheckpoint EngineCheckpoint::load(const std::string& path) {
  const std::string text = read_file(path);
  Json doc;
  try {
    doc = Json::parse(text);
  } catch (const ParseError& e) {
    // A torn or truncated file must name its provenance: the raw parser
    // error has the byte offset but not the path or the file size.
    throw ParseError("EngineCheckpoint: corrupt checkpoint file '" + path +
                     "' (" + std::to_string(text.size()) +
                     " bytes): " + e.what());
  }
  try {
    return from_json(doc);
  } catch (const ParseError& e) {
    throw ParseError("EngineCheckpoint: invalid checkpoint file '" + path +
                     "': " + e.what());
  }
}

}  // namespace mtd
