#include "engine/checkpoint.hpp"

#include <bit>
#include <charconv>

#include "common/error.hpp"
#include "common/time_utils.hpp"
#include "common/fault.hpp"

namespace mtd {

namespace {

constexpr const char* kFormatV1 = "mtd-engine-checkpoint-v1";
constexpr const char* kFormatV2 = "mtd-engine-checkpoint-v2";

/// 64-bit values (seeds, fingerprints) are stored as hex strings: JSON
/// numbers are doubles and would silently lose bits above 2^53.
std::string to_hex(std::uint64_t v) {
  char buf[19] = "0x";
  const auto [ptr, ec] = std::to_chars(buf + 2, buf + sizeof(buf), v, 16);
  return std::string(buf, ptr);
}

std::uint64_t from_hex(const std::string& s, const char* what) {
  if (s.size() < 3 || s[0] != '0' || s[1] != 'x') {
    throw ParseError(std::string(what) + ": expected 0x-prefixed hex, got '" +
                     s + "'");
  }
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data() + 2, s.data() + s.size(), v, 16);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError(std::string(what) + ": bad hex value '" + s + "'");
  }
  return v;
}

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
}

}  // namespace

std::uint64_t network_fingerprint(const Network& network) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  fnv_mix(h, network.size());
  for (const BaseStation& bs : network.base_stations()) {
    fnv_mix(h, bs.id);
    fnv_mix(h, (static_cast<std::uint64_t>(bs.decile) << 24) |
                   (static_cast<std::uint64_t>(bs.region) << 16) |
                   (static_cast<std::uint64_t>(bs.city) << 8) |
                   static_cast<std::uint64_t>(bs.rat));
    fnv_mix(h, std::bit_cast<std::uint64_t>(bs.peak_rate));
    fnv_mix(h, std::bit_cast<std::uint64_t>(bs.offpeak_scale));
  }
  return h;
}

namespace {

/// One raw RNG stream of an EngineBsCursor: the four xoshiro words (hex)
/// plus the cached Marsaglia-polar spare. The spare is a JSON number —
/// dump() prints doubles with %.17g, which round-trips bit-exactly.
Json rng_state_to_json(const Rng::FullState& state) {
  JsonObject obj;
  JsonArray words;
  for (const std::uint64_t w : state.words) words.emplace_back(to_hex(w));
  obj.emplace("words", Json(std::move(words)));
  obj.emplace("has_spare", state.has_spare);
  obj.emplace("spare", state.spare);
  return Json(std::move(obj));
}

Rng::FullState rng_state_from_json(const Json& json, const char* what) {
  Rng::FullState state;
  const JsonArray& words = json.at("words").as_array();
  if (words.size() != state.words.size()) {
    throw ParseError(std::string(what) + ": expected " +
                     std::to_string(state.words.size()) +
                     " state words, got " + std::to_string(words.size()));
  }
  for (std::size_t i = 0; i < state.words.size(); ++i) {
    state.words[i] = from_hex(words[i].as_string(), what);
  }
  state.has_spare = json.at("has_spare").as_bool();
  state.spare = json.at("spare").as_number();
  return state;
}

void parse_shards(const Json& json, EngineCheckpoint& cp) {
  for (const Json& sh : json.at("shards").as_array()) {
    EngineShardCursor cursor;
    cursor.shard = static_cast<std::size_t>(sh.at("shard").as_number());
    cursor.next_day = static_cast<std::size_t>(sh.at("next_day").as_number());
    cursor.sessions_produced = from_hex(
        sh.at("sessions_produced").as_string(), "EngineShardCursor.sessions");
    if (cursor.next_day != cp.next_day) {
      throw ParseError("EngineCheckpoint: shard " +
                       std::to_string(cursor.shard) +
                       " is not at the global cursor day");
    }
    cp.shards.push_back(cursor);
  }
}

/// Fields shared by the v1 and v2 documents (identity, cursor, counters).
void parse_common(const Json& json, EngineCheckpoint& cp) {
  cp.seed = from_hex(json.at("seed").as_string(), "EngineCheckpoint.seed");
  cp.num_days = static_cast<std::size_t>(json.at("num_days").as_number());
  cp.rate_scale = json.at("rate_scale").as_number();
  cp.weekend_rate_factor = json.at("weekend_rate_factor").as_number();
  cp.network_fingerprint =
      from_hex(json.at("network_fingerprint").as_string(),
               "EngineCheckpoint.network_fingerprint");
  cp.next_day = static_cast<std::size_t>(json.at("next_day").as_number());
  cp.clock_minute =
      static_cast<std::uint64_t>(json.at("clock_minute").as_number());
  cp.sessions_emitted = from_hex(json.at("sessions_emitted").as_string(),
                                 "EngineCheckpoint.sessions_emitted");
  cp.minutes_emitted = from_hex(json.at("minutes_emitted").as_string(),
                                "EngineCheckpoint.minutes_emitted");
  // Absent in files written before the typed event plane; those replays
  // streamed no segment or packet events.
  if (json.contains("segments_emitted")) {
    cp.segments_emitted = from_hex(json.at("segments_emitted").as_string(),
                                   "EngineCheckpoint.segments_emitted");
  }
  if (json.contains("packets_emitted")) {
    cp.packets_emitted = from_hex(json.at("packets_emitted").as_string(),
                                  "EngineCheckpoint.packets_emitted");
  }
  cp.volume_mb = json.at("volume_mb").as_number();
}

}  // namespace

Json EngineCheckpoint::to_json() const {
  JsonObject obj;
  obj.emplace("format", kFormatV2);
  obj.emplace("seed", to_hex(seed));
  obj.emplace("num_days", num_days);
  obj.emplace("rate_scale", rate_scale);
  obj.emplace("weekend_rate_factor", weekend_rate_factor);
  obj.emplace("network_fingerprint", to_hex(network_fingerprint));
  obj.emplace("next_day", next_day);
  obj.emplace("clock_minute", static_cast<double>(clock_minute));
  // Cumulative counters are hex-encoded like the seeds: a long-lived engine
  // can push them past 2^53, where JSON doubles silently round.
  obj.emplace("sessions_emitted", to_hex(sessions_emitted));
  obj.emplace("minutes_emitted", to_hex(minutes_emitted));
  obj.emplace("segments_emitted", to_hex(segments_emitted));
  obj.emplace("packets_emitted", to_hex(packets_emitted));
  obj.emplace("volume_mb", volume_mb);
  // How a resume re-derives the generation streams: at a day boundary they
  // re-seed from (seed, next_day); mid-day the raw words live in bs_states.
  JsonObject rng;
  rng.emplace("kind", mid_day() ? "raw-xoshiro" : "per-bs-day-reseed");
  rng.emplace("seed", to_hex(seed));
  rng.emplace("next_day", next_day);
  obj.emplace("rng_streams", Json(std::move(rng)));
  JsonArray shard_arr;
  for (const EngineShardCursor& s : shards) {
    JsonObject sh;
    sh.emplace("shard", s.shard);
    sh.emplace("next_day", s.next_day);
    sh.emplace("sessions_produced", to_hex(s.sessions_produced));
    shard_arr.emplace_back(std::move(sh));
  }
  obj.emplace("shards", Json(std::move(shard_arr)));
  if (!bs_states.empty()) {
    JsonArray bs_arr;
    for (const EngineBsCursor& c : bs_states) {
      JsonObject bs;
      bs.emplace("bs", static_cast<std::size_t>(c.bs));
      bs.emplace("session_rng", rng_state_to_json(c.session_rng));
      bs.emplace("segment_rng", rng_state_to_json(c.segment_rng));
      bs.emplace("packet_rng", rng_state_to_json(c.packet_rng));
      bs.emplace("next_seq", to_hex(c.next_seq));
      bs.emplace("day_volume_mb", c.day_volume_mb);
      bs_arr.emplace_back(std::move(bs));
    }
    obj.emplace("bs_states", Json(std::move(bs_arr)));
  }
  return Json(std::move(obj));
}

EngineCheckpoint EngineCheckpoint::from_json(const Json& json) {
  if (!json.contains("format")) {
    throw ParseError(std::string("EngineCheckpoint: not a ") + kFormatV2 +
                     " (or " + kFormatV1 + ") file");
  }
  const std::string& format = json.at("format").as_string();
  if (format != kFormatV1 && format != kFormatV2) {
    throw ParseError(std::string("EngineCheckpoint: not a ") + kFormatV2 +
                     " (or " + kFormatV1 + ") file");
  }
  EngineCheckpoint cp;
  parse_common(json, cp);
  if (format == kFormatV1) {
    // v1 checkpoints are day-boundary only; the clock must sit exactly on
    // the next_day boundary and no raw stream state may be present.
    if (cp.clock_minute != cp.next_day * kMinutesPerDay) {
      throw ParseError(
          "EngineCheckpoint: clock_minute is not at the next_day boundary");
    }
    parse_shards(json, cp);
    return cp;
  }
  // v2: the clock may sit anywhere inside day next_day.
  if (cp.clock_minute / kMinutesPerDay != cp.next_day) {
    throw ParseError(
        "EngineCheckpoint: clock_minute is not inside day next_day");
  }
  parse_shards(json, cp);
  if (json.contains("bs_states")) {
    for (const Json& bs : json.at("bs_states").as_array()) {
      EngineBsCursor c;
      c.bs = static_cast<std::uint32_t>(bs.at("bs").as_number());
      c.session_rng = rng_state_from_json(bs.at("session_rng"),
                                          "EngineBsCursor.session_rng");
      c.segment_rng = rng_state_from_json(bs.at("segment_rng"),
                                          "EngineBsCursor.segment_rng");
      c.packet_rng = rng_state_from_json(bs.at("packet_rng"),
                                         "EngineBsCursor.packet_rng");
      c.next_seq = from_hex(bs.at("next_seq").as_string(),
                            "EngineBsCursor.next_seq");
      c.day_volume_mb = bs.at("day_volume_mb").as_number();
      if (!cp.bs_states.empty() && cp.bs_states.back().bs >= c.bs) {
        throw ParseError(
            "EngineCheckpoint: bs_states must be sorted by BS index");
      }
      cp.bs_states.push_back(std::move(c));
    }
  }
  if (cp.mid_day() && cp.bs_states.empty()) {
    throw ParseError(
        "EngineCheckpoint: a mid-day checkpoint must carry bs_states");
  }
  if (!cp.mid_day() && !cp.bs_states.empty()) {
    throw ParseError(
        "EngineCheckpoint: a day-boundary checkpoint must not carry "
        "bs_states");
  }
  return cp;
}

void EngineCheckpoint::save(const std::string& path,
                            FaultInjector* fault) const {
  fault_fire(fault, "checkpoint.write");
  write_file_atomic(path, to_json().dump(2));
}

EngineCheckpoint EngineCheckpoint::load(const std::string& path) {
  const std::string text = read_file(path);
  Json doc;
  try {
    doc = Json::parse(text);
  } catch (const ParseError& e) {
    // A torn or truncated file must name its provenance: the raw parser
    // error has the byte offset but not the path or the file size.
    throw ParseError("EngineCheckpoint: corrupt checkpoint file '" + path +
                     "' (" + std::to_string(text.size()) +
                     " bytes): " + e.what());
  }
  try {
    return from_json(doc);
  } catch (const ParseError& e) {
    throw ParseError("EngineCheckpoint: invalid checkpoint file '" + path +
                     "': " + e.what());
  }
}

}  // namespace mtd
