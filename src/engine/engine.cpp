#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/time_utils.hpp"
#include "engine/spsc_ring.hpp"

namespace mtd {

const char* to_string(BackpressurePolicy p) noexcept {
  switch (p) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kDropNewest: return "drop";
  }
  return "?";
}

namespace {

/// One entry of a worker's ring. kMinute and kSession reuse the Session
/// bs/day/minute fields. At each day boundary a worker emits one
/// kBsDayVolume per BS (the volume that BS produced that day) followed by
/// a kDayEnd with its cumulative session counter: the consumer commits the
/// day's volume as a fold over BSs in canonical index order, which keeps
/// the checkpoint's volume counter bit-identical across worker counts and
/// stop/resume splits.
struct EngineEvent {
  enum class Kind : std::uint8_t { kMinute, kSession, kBsDayVolume, kDayEnd };
  Kind kind = Kind::kMinute;
  std::uint32_t count = 0;  // kMinute: arrivals that minute
  Session session;
  std::uint64_t shard_sessions = 0;  // kDayEnd: produced so far this run
  double bs_day_volume_mb = 0.0;     // kBsDayVolume: this BS, this day
};

/// Scaled virtual clock: minute m of the replay maps to a wall-clock
/// deadline; every worker paces itself against the shared epoch, so no
/// cross-thread coordination is needed.
struct VirtualClock {
  double time_scale = 0.0;  // <= 0: max throughput, never waits
  std::chrono::steady_clock::time_point epoch;
  std::uint64_t base_minute = 0;

  void wait_until(std::uint64_t minute) const {
    if (time_scale <= 0.0) return;
    const double wall_s =
        static_cast<double>(minute - base_minute) *
        static_cast<double>(kSecondsPerMinute) / time_scale;
    std::this_thread::sleep_until(epoch + std::chrono::duration_cast<
                                              std::chrono::steady_clock::duration>(
                                      std::chrono::duration<double>(wall_s)));
  }
};

class ShardWorker {
 public:
  ShardWorker(const TraceGenerator& generator, std::vector<std::uint32_t> bss,
              std::size_t queue_capacity)
      : generator_(&generator), bss_(std::move(bss)), ring_(queue_capacity) {}

  SpscRing<EngineEvent>& ring() noexcept { return ring_; }

  void run(std::size_t first_day, std::size_t last_day,
           const VirtualClock& clock, BackpressurePolicy policy,
           Telemetry::PerWorker& tel, const std::atomic<bool>& abort) {
    const Network& network = generator_->network();
    std::vector<BaseStation> scaled(bss_.size());
    std::vector<Rng> rngs(bss_.size(), Rng(0));
    std::vector<double> day_volume(bss_.size(), 0.0);

    for (std::size_t day = first_day; day < last_day; ++day) {
      // Day boundary: every (BS, day) stream re-seeds, which is what makes
      // day-boundary checkpoints O(1) (see engine/checkpoint.hpp).
      for (std::size_t i = 0; i < bss_.size(); ++i) {
        const BaseStation& bs = network[bss_[i]];
        scaled[i] = generator_->day_scaled(bs, day);
        rngs[i] = generator_->bs_day_rng(bs, day);
        day_volume[i] = 0.0;
      }
      for (std::size_t minute = 0; minute < kMinutesPerDay; ++minute) {
        const std::uint64_t abs_minute = day * kMinutesPerDay + minute;
        clock.wait_until(abs_minute);
        if (abort.load(std::memory_order_relaxed)) return;
        for (std::size_t i = 0; i < bss_.size(); ++i) {
          const BaseStation& bs = network[bss_[i]];
          const std::uint32_t count =
              ArrivalProcess(scaled[i]).sample(minute, rngs[i]);
          EngineEvent ev;
          ev.kind = EngineEvent::Kind::kMinute;
          ev.count = count;
          ev.session.bs = bs.id;
          ev.session.day = static_cast<std::uint16_t>(day);
          ev.session.minute_of_day = static_cast<std::uint16_t>(minute);
          if (!push(std::move(ev), policy, tel, &tel.dropped_minutes,
                    abort)) {
            return;  // aborted while blocked
          }
          for (std::uint32_t k = 0; k < count; ++k) {
            EngineEvent sev;
            sev.kind = EngineEvent::Kind::kSession;
            sev.session =
                generator_->sample_session(bs, day, minute, rngs[i]);
            const double volume = sev.session.volume_mb;
            if (!push(std::move(sev), policy, tel, &tel.dropped_sessions,
                      abort)) {
              return;
            }
            // Produced counters include dropped events: they were
            // generated; the drop counters say what never reached the sink.
            ++sessions_;
            day_volume[i] += volume;
            tel.sessions_produced.store(sessions_,
                                        std::memory_order_relaxed);
          }
        }
        tel.produced_minute.store(abs_minute + 1, std::memory_order_relaxed);
      }
      // Per-BS day volumes, then the day-end marker that gates checkpoints;
      // all of these always block, never drop.
      for (std::size_t i = 0; i < bss_.size(); ++i) {
        EngineEvent dv;
        dv.kind = EngineEvent::Kind::kBsDayVolume;
        dv.session.bs = bss_[i];
        dv.session.day = static_cast<std::uint16_t>(day);
        dv.bs_day_volume_mb = day_volume[i];
        if (!push(std::move(dv), BackpressurePolicy::kBlock, tel, nullptr,
                  abort)) {
          return;
        }
      }
      EngineEvent end;
      end.kind = EngineEvent::Kind::kDayEnd;
      end.session.day = static_cast<std::uint16_t>(day);
      end.shard_sessions = sessions_;
      if (!push(std::move(end), BackpressurePolicy::kBlock, tel, nullptr,
                abort)) {
        return;
      }
    }
  }

 private:
  /// Pushes one event under the backpressure policy. Returns false only
  /// when aborted while waiting for ring space.
  bool push(EngineEvent&& ev, BackpressurePolicy policy,
            Telemetry::PerWorker& tel,
            std::atomic<std::uint64_t>* drop_counter,
            const std::atomic<bool>& abort) {
    if (ring_.try_push(std::move(ev))) return true;
    if (policy == BackpressurePolicy::kDropNewest && drop_counter != nullptr) {
      drop_counter->fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    const auto blocked_at = std::chrono::steady_clock::now();
    while (!ring_.try_push(std::move(ev))) {
      if (abort.load(std::memory_order_relaxed)) return false;
      std::this_thread::yield();
    }
    tel.stall_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - blocked_at)
                .count()),
        std::memory_order_relaxed);
    return true;
  }

  const TraceGenerator* generator_;
  std::vector<std::uint32_t> bss_;
  SpscRing<EngineEvent> ring_;
  std::uint64_t sessions_ = 0;
};

}  // namespace

StreamEngine::StreamEngine(const Network& network, const TraceConfig& trace,
                           EngineConfig config)
    : generator_(network, trace),
      config_(std::move(config)),
      fingerprint_(network_fingerprint(network)) {
  if (config_.num_workers == 0) {
    config_.num_workers =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  config_.num_workers = std::min(config_.num_workers, network.size());
  require(config_.queue_capacity >= 2,
          "StreamEngine: queue_capacity must be at least 2");
}

EngineResult StreamEngine::run(TraceSink& sink) {
  return run_days(sink, 0, 0, 0, 0.0);
}

EngineResult StreamEngine::resume(const EngineCheckpoint& from,
                                  TraceSink& sink) {
  const TraceConfig& trace = generator_.config();
  require(from.seed == trace.seed,
          "StreamEngine::resume: checkpoint seed does not match the trace");
  require(from.num_days == trace.num_days,
          "StreamEngine::resume: checkpoint horizon does not match");
  require(from.rate_scale == trace.rate_scale &&
              from.weekend_rate_factor == trace.weekend_rate_factor,
          "StreamEngine::resume: checkpoint rate scaling does not match");
  require(from.network_fingerprint == fingerprint_,
          "StreamEngine::resume: checkpoint was taken on a different network");
  require(from.next_day <= trace.num_days,
          "StreamEngine::resume: checkpoint cursor beyond the horizon");
  return run_days(sink, from.next_day, from.sessions_emitted,
                  from.minutes_emitted, from.volume_mb);
}

EngineResult StreamEngine::run_days(TraceSink& sink, std::size_t first_day,
                                    std::uint64_t prior_sessions,
                                    std::uint64_t prior_minutes,
                                    double prior_volume) {
  const Network& network = generator_.network();
  const TraceConfig& trace = generator_.config();
  const std::size_t budget =
      config_.stop_after_days == 0 ? trace.num_days : config_.stop_after_days;
  const std::size_t last_day =
      std::min(trace.num_days, first_day + budget);
  const std::size_t num_workers = config_.num_workers;

  // `volume_mb` is the absolute committed volume: prior volume plus one
  // per-day increment per finished day, each folded over BSs in index
  // order. That single canonical association order makes the counter
  // bit-identical across worker counts and stop/resume splits.
  auto make_checkpoint = [&](std::size_t next_day, std::uint64_t sessions,
                             double volume_mb,
                             const std::vector<std::uint64_t>& per_shard) {
    EngineCheckpoint cp;
    cp.seed = trace.seed;
    cp.num_days = trace.num_days;
    cp.rate_scale = trace.rate_scale;
    cp.weekend_rate_factor = trace.weekend_rate_factor;
    cp.network_fingerprint = fingerprint_;
    cp.next_day = next_day;
    cp.clock_minute = next_day * kMinutesPerDay;
    cp.sessions_emitted = prior_sessions + sessions;
    cp.minutes_emitted =
        prior_minutes + static_cast<std::uint64_t>(network.size()) *
                            kMinutesPerDay * (next_day - first_day);
    cp.volume_mb = volume_mb;
    for (std::size_t w = 0; w < per_shard.size(); ++w) {
      cp.shards.push_back(EngineShardCursor{w, next_day, per_shard[w]});
    }
    return cp;
  };

  Telemetry telemetry(num_workers);
  telemetry.start(prior_sessions, prior_volume);
  for (std::size_t w = 0; w < num_workers; ++w) {
    telemetry.worker(w).produced_minute.store(first_day * kMinutesPerDay,
                                              std::memory_order_relaxed);
  }

  // Nothing to stream (resume of a finished replay, or zero-day budget).
  if (first_day >= last_day) {
    EngineResult result;
    result.checkpoint = make_checkpoint(
        first_day, 0, prior_volume, std::vector<std::uint64_t>(num_workers, 0));
    result.telemetry = telemetry.snapshot(0);
    return result;
  }

  // Strided BS partition keeps the decile mix balanced per shard. Workers
  // hold atomics (the ring), so they live behind stable pointers.
  std::vector<std::unique_ptr<ShardWorker>> shards;
  shards.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    std::vector<std::uint32_t> bss;
    for (std::size_t b = w; b < network.size(); b += num_workers) {
      bss.push_back(static_cast<std::uint32_t>(b));
    }
    shards.push_back(std::make_unique<ShardWorker>(generator_, std::move(bss),
                                                   config_.queue_capacity));
  }

  VirtualClock clock{config_.time_scale, std::chrono::steady_clock::now(),
                     first_day * kMinutesPerDay};
  std::atomic<bool> abort{false};
  std::atomic<std::size_t> active{num_workers};

  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    threads.emplace_back([&, w] {
      shards[w]->run(first_day, last_day, clock, config_.backpressure,
                     telemetry.worker(w), abort);
      active.fetch_sub(1, std::memory_order_release);
    });
  }

  // Consumer: this thread drains every ring into the sink.
  EngineResult result;
  std::vector<std::size_t> shard_next_day(num_workers, first_day);
  std::vector<std::uint64_t> shard_sessions(num_workers, 0);
  // Per-BS volumes of each not-yet-committed day; folded into
  // committed_volume in (day, BS) order once every shard passes the day.
  std::map<std::size_t, std::vector<double>> day_volumes;
  double committed_volume = prior_volume;
  std::size_t checkpointed_day = first_day;  // next_day of the last checkpoint
  auto last_snapshot = std::chrono::steady_clock::now();
  std::uint64_t delivered_since_check = 0;
  std::exception_ptr sink_error;

  auto queue_depth = [&] {
    std::uint64_t depth = 0;
    for (const auto& s : shards) depth += s->ring().size();
    return depth;
  };
  auto maybe_snapshot = [&] {
    if (config_.telemetry_period_s <= 0.0 || !snapshot_callback_) return;
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - last_snapshot).count() <
        config_.telemetry_period_s) {
      return;
    }
    last_snapshot = now;
    snapshot_callback_(telemetry.snapshot(queue_depth()));
  };

  auto deliver = [&](EngineEvent& ev, std::size_t w) {
    switch (ev.kind) {
      case EngineEvent::Kind::kMinute:
        sink.on_minute(network[ev.session.bs], ev.session.day,
                       ev.session.minute_of_day, ev.count);
        telemetry.count_minute();
        break;
      case EngineEvent::Kind::kSession:
        sink.on_session(ev.session);
        telemetry.count_session(ev.session.volume_mb);
        break;
      case EngineEvent::Kind::kBsDayVolume: {
        auto& volumes = day_volumes[ev.session.day];
        if (volumes.empty()) volumes.assign(network.size(), 0.0);
        volumes[ev.session.bs] = ev.bs_day_volume_mb;
        break;
      }
      case EngineEvent::Kind::kDayEnd: {
        shard_next_day[w] = static_cast<std::size_t>(ev.session.day) + 1;
        shard_sessions[w] = ev.shard_sessions;
        const std::size_t day_low_water =
            *std::min_element(shard_next_day.begin(), shard_next_day.end());
        if (day_low_water > checkpointed_day) {
          // Rings are FIFO and every kBsDayVolume precedes its shard's
          // kDayEnd, so all per-BS volumes of the finished days are here.
          for (std::size_t d = checkpointed_day; d < day_low_water; ++d) {
            const auto it = day_volumes.find(d);
            double day_total = 0.0;
            if (it != day_volumes.end()) {
              for (double v : it->second) day_total += v;
              day_volumes.erase(it);
            }
            committed_volume += day_total;
          }
          checkpointed_day = day_low_water;
          std::uint64_t sessions = 0;
          for (std::size_t i = 0; i < num_workers; ++i) {
            sessions += shard_sessions[i];
          }
          result.checkpoint = make_checkpoint(checkpointed_day, sessions,
                                              committed_volume, shard_sessions);
          if (!config_.checkpoint_path.empty()) {
            result.checkpoint.save(config_.checkpoint_path);
          }
        }
        break;
      }
    }
  };

  try {
    for (;;) {
      bool any = false;
      for (std::size_t w = 0; w < num_workers; ++w) {
        EngineEvent ev;
        while (shards[w]->ring().try_pop(ev)) {
          any = true;
          deliver(ev, w);
          if (++delivered_since_check >= 4096) {
            delivered_since_check = 0;
            maybe_snapshot();
          }
        }
      }
      if (!any) {
        if (active.load(std::memory_order_acquire) == 0) {
          // Workers are done; one final sweep drains anything pushed
          // between our empty check and their exit.
          for (std::size_t w = 0; w < num_workers; ++w) {
            EngineEvent ev;
            while (shards[w]->ring().try_pop(ev)) deliver(ev, w);
          }
          break;
        }
        maybe_snapshot();
        std::this_thread::yield();
      }
    }
  } catch (...) {
    // Unblock producers (they check the flag while spinning on a full
    // ring and at every minute tick), then re-throw to the caller.
    sink_error = std::current_exception();
    abort.store(true, std::memory_order_relaxed);
    // Drain without delivering so blocked producers can finish.
    for (;;) {
      bool any = false;
      EngineEvent ev;
      for (const auto& s : shards) {
        while (s->ring().try_pop(ev)) any = true;
      }
      if (!any && active.load(std::memory_order_acquire) == 0) break;
      if (!any) std::this_thread::yield();
    }
  }
  for (std::thread& t : threads) t.join();
  if (sink_error) std::rethrow_exception(sink_error);

  result.telemetry = telemetry.snapshot(0);
  if (snapshot_callback_) snapshot_callback_(result.telemetry);
  return result;
}

}  // namespace mtd
