#include "engine/engine.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <exception>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "common/time_utils.hpp"
#include "common/fault.hpp"
#include "engine/spsc_ring.hpp"

namespace mtd {

const char* to_string(BackpressurePolicy p) noexcept {
  switch (p) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kDropNewest: return "drop";
  }
  return "?";
}

namespace {

std::string hex_str(std::uint64_t v) {
  char buf[19] = "0x";
  const auto [ptr, ec] = std::to_chars(buf + 2, buf + sizeof(buf), v, 16);
  return std::string(buf, ptr);
}

/// The consumer-side fault point of each event kind.
constexpr const char* kSinkFaultPoint[kNumEventKinds] = {
    "sink.minute", "sink.session", "sink.segment", "sink.packet"};

/// Independent expansion streams derived from the (BS, day) base stream:
/// segment and packet draws never touch the session RNG, so enabling the
/// expansions keeps session content bit-identical.
constexpr std::uint64_t kSegmentStream = 0x7365676dULL;  // "segm"
constexpr std::uint64_t kPacketStream = 0x70616b74ULL;   // "pakt"

/// Cooperative cross-thread failure propagation: any thread (worker,
/// consumer, watchdog) signals the first failure it sees; producers observe
/// the flag at every minute tick and while spinning on a full ring, the
/// consumer at every sweep. Only the first exception is kept — later ones
/// are cascade effects of the same abort.
class StopState {
 public:
  std::atomic<bool> flag{false};

  void signal(std::exception_ptr error) noexcept MTD_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (!first_) first_ = std::move(error);
    }
    flag.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool requested() const noexcept {
    return flag.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::exception_ptr first_error() MTD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return first_;
  }

 private:
  Mutex mutex_;
  std::exception_ptr first_ MTD_GUARDED_BY(mutex_);
};

/// One ring slot. kBatch carries up to batch_size data events in
/// generation order. At each day boundary a worker emits one kBsDayVolume
/// per BS (the volume that BS produced that day) followed by a kDayEnd
/// with its cumulative per-kind produced counters: the consumer commits
/// the day's volume as a fold over BSs in canonical index order, which
/// keeps the checkpoint's counters bit-identical across worker counts,
/// batch sizes, and stop/resume splits. When checkpoint_interval_minutes
/// is set, workers additionally emit a kMinuteMark after every minute on
/// the absolute mark grid, carrying the raw per-BS stream cursors of the
/// shard; once every worker's mark for the same minute has arrived, the
/// consumer records a mid-day v2 checkpoint. Control items always block,
/// never drop.
struct RingItem {
  enum class Kind : std::uint8_t { kBatch, kBsDayVolume, kDayEnd,
                                   kMinuteMark };
  Kind kind = Kind::kBatch;
  EventBatch batch;                   // kBatch
  std::uint32_t bs = 0;               // kBsDayVolume
  std::uint16_t day = 0;              // kBsDayVolume, kDayEnd
  double bs_day_volume_mb = 0.0;      // kBsDayVolume
  std::uint64_t minute_end = 0;       // kMinuteMark: first unproduced minute
  std::array<std::uint64_t, kNumEventKinds> shard_produced{};  // kDayEnd/Mark
  std::vector<EngineBsCursor> bs_states;  // kMinuteMark, in bss_ order
};

/// Scaled virtual clock: minute m of the replay maps to a wall-clock
/// deadline; every worker paces itself against the shared epoch, so no
/// cross-thread coordination is needed.
struct VirtualClock {
  double time_scale = 0.0;  // <= 0: max throughput, never waits
  std::chrono::steady_clock::time_point epoch;
  std::uint64_t base_minute = 0;

  void wait_until(std::uint64_t minute) const {
    if (time_scale <= 0.0) return;
    const double wall_s =
        static_cast<double>(minute - base_minute) *
        static_cast<double>(kSecondsPerMinute) / time_scale;
    std::this_thread::sleep_until(epoch + std::chrono::duration_cast<
                                              std::chrono::steady_clock::duration>(
                                      std::chrono::duration<double>(wall_s)));
  }
};

class ShardWorker {
 public:
  ShardWorker(const TraceGenerator& generator, const EngineConfig& config,
              std::vector<std::uint32_t> bss)
      : generator_(&generator),
        bss_(std::move(bss)),
        ring_(config.queue_capacity),
        batch_size_(config.batch_size),
        kernel_(config.kernel),
        interval_(config.checkpoint_interval_minutes),
        kinds_(config.event_kinds),
        mobility_(config.mobility),
        packet_(config.packet) {
    pending_.reserve(batch_size_);
  }

  SpscRing<RingItem>& ring() noexcept { return ring_; }

  /// Events staged but never pushed (abort before the batch flushed). Read
  /// by the engine after the worker thread has been joined.
  [[nodiscard]] const EventBatch& pending() const noexcept {
    return pending_;
  }

  void run(std::size_t first_day, std::size_t first_minute,
           std::size_t last_day, const VirtualClock& clock,
           BackpressurePolicy policy, Telemetry::PerWorker& tel,
           const std::atomic<bool>& abort,
           const std::vector<EngineBsCursor>* resume_states,
           FaultInjector* fault) {
    abort_ = &abort;
    // Shared produced counters are published at minute granularity; this
    // guard covers every return path (including aborts), so post-join
    // accounting always sees the final local counts.
    struct PublishGuard {
      ShardWorker* worker;
      Telemetry::PerWorker* tel;
      ~PublishGuard() { worker->publish_produced(*tel); }
    } publish_guard{this, &tel};
    const Network& network = generator_->network();
    const bool emit_minutes = kinds_.contains(EventKind::kMinute);
    const bool emit_sessions = kinds_.contains(EventKind::kSession);
    const bool emit_segments = kinds_.contains(EventKind::kSegment);
    const bool emit_packets = kinds_.contains(EventKind::kPacket);
    std::vector<BaseStation> scaled(bss_.size());
    std::vector<Rng> rngs(bss_.size(), Rng(0));
    std::vector<Rng> seg_rngs(bss_.size(), Rng(0));
    std::vector<Rng> pkt_rngs(bss_.size(), Rng(0));
    std::vector<double> day_volume(bss_.size(), 0.0);
    std::vector<std::uint64_t> seqs(bss_.size(), 0);

    for (std::size_t day = first_day; day < last_day; ++day) {
      fault_fire(fault, "worker.day");
      // A mid-day resume re-enters the first day at first_minute with the
      // raw stream cursors of the suspended run restored (including any
      // cached spare normal deviate — see Rng::FullState).
      const bool resuming = day == first_day && first_minute > 0;
      // Day boundary: every (BS, day) stream re-seeds, which is what makes
      // day-boundary checkpoints O(1) (see engine/checkpoint.hpp). The
      // expansion streams are split off the base stream without consuming
      // it, so the session draws stay exactly the batch generator's.
      for (std::size_t i = 0; i < bss_.size(); ++i) {
        const BaseStation& bs = network[bss_[i]];
        scaled[i] = generator_->day_scaled(bs, day);
        if (resuming) {
          const EngineBsCursor& c = (*resume_states)[bss_[i]];
          rngs[i].set_full_state(c.session_rng);
          seg_rngs[i].set_full_state(c.segment_rng);
          pkt_rngs[i].set_full_state(c.packet_rng);
          day_volume[i] = c.day_volume_mb;
          seqs[i] = c.next_seq;
        } else {
          rngs[i] = generator_->bs_day_rng(bs, day);
          seg_rngs[i] = rngs[i].split(kSegmentStream);
          pkt_rngs[i] = rngs[i].split(kPacketStream);
          day_volume[i] = 0.0;
          seqs[i] = 0;
        }
      }
      for (std::size_t minute = resuming ? first_minute : 0;
           minute < kMinutesPerDay; ++minute) {
        const std::uint64_t abs_minute = day * kMinutesPerDay + minute;
        clock.wait_until(abs_minute);
        if (abort.load(std::memory_order_relaxed)) return;
        for (std::size_t i = 0; i < bss_.size(); ++i) {
          const BaseStation& bs = network[bss_[i]];
          // kBatch fills the SoA minute block in one go (its own
          // per-minute RNG stream; rngs[i] stays parked at the day base
          // state, which keeps mid-day cursors kernel-agnostic); kScalar
          // draws sessions one by one below, advancing rngs[i].
          const bool batch = kernel_ == GeneratorKernel::kBatch;
          if (batch) {
            generator_->sample_minute_block(scaled[i], day, minute, block_);
          }
          const std::uint32_t count =
              batch ? block_.count
                    : ArrivalProcess(scaled[i]).sample(minute, rngs[i]);
          const EventKey base_key{bs.id, static_cast<std::uint16_t>(day),
                                  static_cast<std::uint16_t>(minute), 0};
          if (emit_minutes) {
            StreamEvent ev;
            ev.key = base_key;
            ev.key.seq = seqs[i]++;
            ev.payload = MinuteEvent{count};
            if (!append(std::move(ev), policy, tel)) return;
          }
          for (std::uint32_t k = 0; k < count; ++k) {
            fault_fire(fault, "worker.session");
            Session session;
            if (batch) {
              // Column k of the minute block becomes the event payload.
              session.bs = bs.id;
              session.day = static_cast<std::uint16_t>(day);
              session.minute_of_day = static_cast<std::uint16_t>(minute);
              session.service = block_.service[k];
              session.transient = block_.transient[k] != 0;
              session.volume_mb = block_.volume_mb[k];
              session.duration_s = block_.duration_s[k];
            } else {
              session = generator_->sample_session(bs, day, minute, rngs[i]);
            }
            day_volume[i] += session.volume_mb;
            // The session's slot in the (BS, day) order is allocated even
            // when session events are masked out, so segment and packet
            // events always reference a stable session_seq.
            const std::uint64_t session_seq = seqs[i]++;
            if (emit_sessions) {
              StreamEvent ev;
              ev.key = base_key;
              ev.key.seq = session_seq;
              ev.payload = SessionEvent{session};
              if (!append(std::move(ev), policy, tel)) return;
            }
            if (emit_segments) {
              const HandoverChain chain = mobility_.split(
                  session.volume_mb, session.duration_s, seg_rngs[i]);
              for (const SessionSegment& segment : chain.segments) {
                StreamEvent ev;
                ev.key = base_key;
                ev.key.seq = seqs[i]++;
                ev.payload = SegmentEvent{segment, session.service,
                                          chain.state, session_seq};
                if (!append(std::move(ev), policy, tel)) return;
              }
            }
            if (emit_packets) {
              packet_.generate_stream(
                  session.volume_mb, session.duration_s, pkt_rngs[i],
                  [&](const Packet& packet) {
                    if (aborted_) return;  // cannot break out of the stream
                    StreamEvent ev;
                    ev.key = base_key;
                    ev.key.seq = seqs[i]++;
                    ev.payload =
                        PacketEvent{packet, session.service, session_seq};
                    static_cast<void>(append(std::move(ev), policy, tel));
                  });
              if (aborted_) return;
            }
          }
        }
        publish_produced(tel);
        tel.produced_minute.store(abs_minute + 1, std::memory_order_relaxed);
        // Minute-interval mark: the grid is absolute minutes, so a resumed
        // run marks the same minutes the original would have. Marks on a
        // day boundary are skipped — the kDayEnd checkpoint covers them
        // (and is cheaper: no raw stream state).
        const std::uint64_t next_minute = abs_minute + 1;
        if (interval_ > 0 && next_minute % interval_ == 0 &&
            next_minute % kMinutesPerDay != 0) {
          // Flush first so every event before the mark precedes it in the
          // FIFO ring; the cursors then describe exactly the post-flush
          // stream positions.
          if (!flush(policy, tel)) return;
          RingItem mark;
          mark.kind = RingItem::Kind::kMinuteMark;
          mark.minute_end = next_minute;
          mark.shard_produced = produced_;
          mark.bs_states.reserve(bss_.size());
          for (std::size_t i = 0; i < bss_.size(); ++i) {
            EngineBsCursor c;
            c.bs = bss_[i];
            c.session_rng = rngs[i].full_state();
            c.segment_rng = seg_rngs[i].full_state();
            c.packet_rng = pkt_rngs[i].full_state();
            c.next_seq = seqs[i];
            c.day_volume_mb = day_volume[i];
            mark.bs_states.push_back(c);
          }
          if (!push_item(std::move(mark), BackpressurePolicy::kBlock, tel)) {
            return;
          }
        }
      }
      // Flush the partial batch, then the per-BS day volumes and the
      // day-end marker that gates checkpoints; controls always block.
      if (!flush(policy, tel)) return;
      for (std::size_t i = 0; i < bss_.size(); ++i) {
        RingItem dv;
        dv.kind = RingItem::Kind::kBsDayVolume;
        dv.bs = bss_[i];
        dv.day = static_cast<std::uint16_t>(day);
        dv.bs_day_volume_mb = day_volume[i];
        if (!push_item(std::move(dv), BackpressurePolicy::kBlock, tel)) {
          return;
        }
      }
      RingItem end;
      end.kind = RingItem::Kind::kDayEnd;
      end.day = static_cast<std::uint16_t>(day);
      end.shard_produced = produced_;
      if (!push_item(std::move(end), BackpressurePolicy::kBlock, tel)) {
        return;
      }
    }
  }

 private:
  /// Stages one event into the pending batch, flushing when full.
  /// Produced counters include dropped events: they were generated; the
  /// drop counters say what never reached the sink. Returns false only
  /// when aborted while waiting for ring space.
  bool append(StreamEvent&& ev, BackpressurePolicy policy,
              Telemetry::PerWorker& tel) {
    if (aborted_) return false;
    const auto kind = static_cast<std::size_t>(ev.kind());
    ++produced_[kind];
    // The shared counter is fed from produced_ in publish_produced —
    // a per-event fetch_add here was measurable at batch-kernel rates.
    pending_.push_back(std::move(ev));
    if (pending_.size() >= batch_size_) return flush(policy, tel);
    return true;
  }

  /// Publishes produced_ into the shared telemetry block: one atomic add
  /// per kind that advanced since the last publish. Called per minute and
  /// on every exit from run(), so externally observed counts lag a
  /// worker's local ones by at most one minute of events.
  void publish_produced(Telemetry::PerWorker& tel) noexcept {
    for (std::size_t k = 0; k < kNumEventKinds; ++k) {
      const std::uint64_t delta = produced_[k] - published_[k];
      if (delta != 0) {
        tel.produced[k].fetch_add(delta, std::memory_order_relaxed);
        published_[k] = produced_[k];
      }
    }
  }

  bool flush(BackpressurePolicy policy, Telemetry::PerWorker& tel) {
    if (pending_.empty()) return true;
    RingItem item;
    item.batch = std::move(pending_);
    pending_ = EventBatch();
    pending_.reserve(batch_size_);
    return push_item(std::move(item), policy, tel);
  }

  /// Pushes one ring slot under the backpressure policy. A dropped kBatch
  /// counts every event it carried, per kind.
  bool push_item(RingItem&& item, BackpressurePolicy policy,
                 Telemetry::PerWorker& tel) {
    if (ring_.try_push(std::move(item))) return true;
    if (policy == BackpressurePolicy::kDropNewest &&
        item.kind == RingItem::Kind::kBatch) {
      for (const StreamEvent& ev : item.batch) {
        tel.count_dropped(ev.kind());
      }
      return true;
    }
    const auto blocked_at = std::chrono::steady_clock::now();
    while (!ring_.try_push(std::move(item))) {
      if (abort_->load(std::memory_order_relaxed)) {
        aborted_ = true;
        // The batch never reached the ring: hand its events back to
        // pending_ (always empty here — a kBatch only spins from flush)
        // so the post-join sweep counts them discarded and the per-kind
        // conservation identity closes on this path too.
        for (StreamEvent& ev : item.batch) pending_.push_back(std::move(ev));
        return false;
      }
      std::this_thread::yield();
    }
    tel.stall_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - blocked_at)
                .count()),
        std::memory_order_relaxed);
    return true;
  }

  const TraceGenerator* generator_;
  std::vector<std::uint32_t> bss_;
  SpscRing<RingItem> ring_;
  std::size_t batch_size_;
  GeneratorKernel kernel_;
  std::size_t interval_;
  EventKindMask kinds_;
  MinuteBlock block_;  // reused SoA buffers of the kBatch path
  HandoverChainGenerator mobility_;
  PacketScheduleGenerator packet_;
  EventBatch pending_;
  std::array<std::uint64_t, kNumEventKinds> produced_{};
  std::array<std::uint64_t, kNumEventKinds> published_{};  // in telemetry
  const std::atomic<bool>* abort_ = nullptr;
  bool aborted_ = false;
};

}  // namespace

StreamEngine::StreamEngine(const Network& network, const TraceConfig& trace,
                           EngineConfig config)
    : generator_(network, trace),
      config_(std::move(config)),
      fingerprint_(network_fingerprint(network)) {
  if (config_.num_workers == 0) {
    config_.num_workers =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  config_.num_workers = std::min(config_.num_workers, network.size());
  require(config_.queue_capacity >= 2,
          "StreamEngine: queue_capacity must be at least 2");
  require(config_.batch_size >= 1,
          "StreamEngine: batch_size must be at least 1");
  require(config_.checkpoint_max_attempts >= 1,
          "StreamEngine: checkpoint_max_attempts must be at least 1");
}

EngineResult StreamEngine::run(EventSink& sink) {
  return run_days(sink, 0, 0, nullptr, {}, 0.0);
}

EngineResult StreamEngine::run(TraceSink& sink) {
  TraceSinkAdapter adapter(network(), sink);
  return run(adapter);
}

EngineResult StreamEngine::resume(const EngineCheckpoint& from,
                                  EventSink& sink) {
  const TraceConfig& trace = generator_.config();
  const auto mismatch = [](const char* field, const std::string& expected,
                           const std::string& actual) {
    return InvalidArgument(std::string("StreamEngine::resume: checkpoint "
                                       "mismatch on ") +
                           field + ": engine expects " + expected +
                           ", checkpoint has " + actual);
  };
  if (from.seed != trace.seed) {
    throw mismatch("trace.seed", hex_str(trace.seed), hex_str(from.seed));
  }
  if (from.num_days != trace.num_days) {
    throw mismatch("trace.num_days", std::to_string(trace.num_days),
                   std::to_string(from.num_days));
  }
  if (from.rate_scale != trace.rate_scale) {
    throw mismatch("trace.rate_scale", std::to_string(trace.rate_scale),
                   std::to_string(from.rate_scale));
  }
  if (from.weekend_rate_factor != trace.weekend_rate_factor) {
    throw mismatch("trace.weekend_rate_factor",
                   std::to_string(trace.weekend_rate_factor),
                   std::to_string(from.weekend_rate_factor));
  }
  if (from.network_fingerprint != fingerprint_) {
    throw mismatch("network_fingerprint", hex_str(fingerprint_),
                   hex_str(from.network_fingerprint));
  }
  if (from.next_day > trace.num_days) {
    throw InvalidArgument(
        "StreamEngine::resume: checkpoint cursor (next_day=" +
        std::to_string(from.next_day) + ") is beyond the horizon (num_days=" +
        std::to_string(trace.num_days) + ")");
  }
  // from_json enforces these internal-consistency invariants at load time,
  // but resume() also accepts checkpoints built in memory; a clock or shard
  // cursor disagreeing with next_day would re-enter the minute loop at a
  // different point than the counters describe and diverge silently.
  if (from.clock_minute / kMinutesPerDay != from.next_day) {
    throw InvalidArgument(
        "StreamEngine::resume: checkpoint clock (clock_minute=" +
        std::to_string(from.clock_minute) + " is in day " +
        std::to_string(from.clock_minute / kMinutesPerDay) +
        ") disagrees with its cursor (next_day=" +
        std::to_string(from.next_day) + ")");
  }
  for (const EngineShardCursor& shard : from.shards) {
    if (shard.next_day != from.next_day) {
      throw InvalidArgument(
          "StreamEngine::resume: shard " + std::to_string(shard.shard) +
          " cursor (next_day=" + std::to_string(shard.next_day) +
          ") disagrees with the checkpoint cursor (next_day=" +
          std::to_string(from.next_day) + ")");
    }
  }
  if (from.mid_day()) {
    // A mid-day resume restores raw per-BS streams; the cursor set must
    // cover the whole network, indexed by network index, so any worker
    // count can pick its shard's entries directly.
    if (from.bs_states.size() != network().size()) {
      throw InvalidArgument(
          "StreamEngine::resume: mid-day checkpoint has " +
          std::to_string(from.bs_states.size()) + " BS cursors, network has " +
          std::to_string(network().size()));
    }
    for (std::size_t i = 0; i < from.bs_states.size(); ++i) {
      if (from.bs_states[i].bs != i) {
        throw InvalidArgument(
            "StreamEngine::resume: mid-day checkpoint BS cursors are not "
            "the contiguous network index range (entry " +
            std::to_string(i) + " is BS " +
            std::to_string(from.bs_states[i].bs) + ")");
      }
    }
  }
  std::array<std::uint64_t, kNumEventKinds> prior{};
  prior[static_cast<std::size_t>(EventKind::kMinute)] = from.minutes_emitted;
  prior[static_cast<std::size_t>(EventKind::kSession)] =
      from.sessions_emitted;
  prior[static_cast<std::size_t>(EventKind::kSegment)] =
      from.segments_emitted;
  prior[static_cast<std::size_t>(EventKind::kPacket)] = from.packets_emitted;
  return run_days(sink, from.next_day, from.minute_of_day(), &from.bs_states,
                  prior, from.volume_mb);
}

EngineResult StreamEngine::resume(const EngineCheckpoint& from,
                                  TraceSink& sink) {
  TraceSinkAdapter adapter(network(), sink);
  return resume(from, adapter);
}

EngineResult StreamEngine::run_days(
    EventSink& sink, std::size_t first_day, std::size_t first_minute,
    const std::vector<EngineBsCursor>* resume_states,
    const std::array<std::uint64_t, kNumEventKinds>& prior,
    double prior_volume) {
  const Network& network = generator_.network();
  const TraceConfig& trace = generator_.config();
  const std::size_t budget =
      config_.stop_after_days == 0 ? trace.num_days : config_.stop_after_days;
  const std::size_t last_day =
      std::min(trace.num_days, first_day + budget);
  const std::size_t num_workers = config_.num_workers;
  using KindTotals = std::array<std::uint64_t, kNumEventKinds>;

  // `volume_mb` is the absolute committed volume: prior volume plus one
  // per-day increment per finished day, each folded over BSs in index
  // order. That single canonical association order makes the counter
  // bit-identical across worker counts, batch sizes, and stop/resume
  // splits.
  auto make_checkpoint = [&](std::uint64_t clock_minute,
                             const KindTotals& totals, double volume_mb,
                             const std::vector<KindTotals>& per_shard,
                             std::vector<EngineBsCursor> bs_states =
                                 std::vector<EngineBsCursor>()) {
    EngineCheckpoint cp;
    cp.seed = trace.seed;
    cp.num_days = trace.num_days;
    cp.rate_scale = trace.rate_scale;
    cp.weekend_rate_factor = trace.weekend_rate_factor;
    cp.network_fingerprint = fingerprint_;
    cp.next_day = static_cast<std::size_t>(clock_minute / kMinutesPerDay);
    cp.clock_minute = clock_minute;
    cp.bs_states = std::move(bs_states);
    const auto idx = [](EventKind k) { return static_cast<std::size_t>(k); };
    cp.minutes_emitted =
        prior[idx(EventKind::kMinute)] + totals[idx(EventKind::kMinute)];
    cp.sessions_emitted =
        prior[idx(EventKind::kSession)] + totals[idx(EventKind::kSession)];
    cp.segments_emitted =
        prior[idx(EventKind::kSegment)] + totals[idx(EventKind::kSegment)];
    cp.packets_emitted =
        prior[idx(EventKind::kPacket)] + totals[idx(EventKind::kPacket)];
    cp.volume_mb = volume_mb;
    for (std::size_t w = 0; w < per_shard.size(); ++w) {
      cp.shards.push_back(EngineShardCursor{
          w, cp.next_day, per_shard[w][idx(EventKind::kSession)]});
    }
    return cp;
  };

  const std::uint64_t start_minute =
      static_cast<std::uint64_t>(first_day) * kMinutesPerDay + first_minute;

  Telemetry telemetry(num_workers);
  telemetry.start(prior, prior_volume);
  for (std::size_t w = 0; w < num_workers; ++w) {
    telemetry.worker(w).produced_minute.store(start_minute,
                                              std::memory_order_relaxed);
  }

  // Nothing to stream (resume of a finished replay, or zero-day budget).
  if (first_day >= last_day) {
    EngineResult result;
    result.checkpoint =
        make_checkpoint(start_minute, KindTotals{}, prior_volume,
                        std::vector<KindTotals>(num_workers));
    result.telemetry = telemetry.snapshot(0);
    return result;
  }

  // Strided BS partition keeps the decile mix balanced per shard. Workers
  // hold atomics (the ring), so they live behind stable pointers.
  std::vector<std::unique_ptr<ShardWorker>> shards;
  shards.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    std::vector<std::uint32_t> bss;
    for (std::size_t b = w; b < network.size(); b += num_workers) {
      bss.push_back(static_cast<std::uint32_t>(b));
    }
    shards.push_back(
        std::make_unique<ShardWorker>(generator_, config_, std::move(bss)));
  }

  VirtualClock clock{config_.time_scale, std::chrono::steady_clock::now(),
                     start_minute};
  StopState stop;
  std::atomic<std::size_t> active{num_workers};
  // Deterministic backoff jitter for checkpoint-write retries: seeded from
  // the trace, not the wall clock, so a replayed failure schedule produces
  // the same retry timing.
  Rng backoff_rng(trace.seed ^ 0x636b7074ULL /* "ckpt" */);

  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    threads.emplace_back([&, w] {
      try {
        shards[w]->run(first_day, first_minute, last_day, clock,
                       config_.backpressure, telemetry.worker(w), stop.flag,
                       resume_states, config_.fault);
      } catch (...) {
        // First-exception capture: a worker fault stops the whole engine;
        // the consumer notices, drains, joins, and rethrows this.
        stop.signal(std::current_exception());
      }
      active.fetch_sub(1, std::memory_order_release);
    });
  }

  auto queue_depth = [&] {
    std::uint64_t depth = 0;
    for (const auto& s : shards) depth += s->ring().size();
    return depth;
  };

  // Watchdog: aborts the run when no counter moves for the configured
  // deadline — a consumer wedged in a sink call, a stuck worker, a
  // livelocked pipeline. It only observes atomics, so it can never deadlock
  // with the threads it guards; a genuinely unbounded stall inside a sink
  // callback is beyond its reach (we never detach threads).
  std::atomic<bool> engine_done{false};
  std::thread watchdog;
  if (config_.watchdog_timeout_s > 0.0) {
    watchdog = std::thread([&] {
      const auto deadline =
          std::chrono::duration<double>(config_.watchdog_timeout_s);
      const auto poll = std::min(std::chrono::duration<double>(0.05),
                                 deadline / 4.0);
      auto signature = [&] {
        const TelemetrySnapshot s = telemetry.snapshot(0);
        std::uint64_t sum = s.clock_minute;
        for (const EventKindCounters& c : s.kinds) {
          sum += c.produced + c.consumed + c.dropped + c.sink_errors +
                 c.discarded;
        }
        return sum;
      };
      std::uint64_t last_signature = signature();
      auto last_change = std::chrono::steady_clock::now();
      while (!engine_done.load(std::memory_order_acquire) &&
             !stop.requested()) {
        std::this_thread::sleep_for(poll);
        const std::uint64_t now_signature = signature();
        const auto now = std::chrono::steady_clock::now();
        if (now_signature != last_signature) {
          last_signature = now_signature;
          last_change = now;
          continue;
        }
        if (now - last_change >= deadline) {
          stop.signal(std::make_exception_ptr(EngineError(
              "StreamEngine: watchdog detected a stalled pipeline (no "
              "progress for " +
                  std::to_string(config_.watchdog_timeout_s) + " s)",
              /*retryable=*/true)));
          break;
        }
      }
    });
  }

  // Consumer: this thread drains every ring into the sink.
  EngineResult result;
  std::vector<std::size_t> shard_next_day(num_workers, first_day);
  std::vector<KindTotals> shard_produced(num_workers);
  // Per-BS volumes of each not-yet-committed day; folded into
  // committed_volume in (day, BS) order once every shard passes the day.
  std::map<std::size_t, std::vector<double>> day_volumes;
  double committed_volume = prior_volume;
  std::size_t checkpointed_day = first_day;  // next_day of the last checkpoint
  // Minute-interval marks in flight: a mid-day checkpoint is recorded once
  // every worker's mark for the same minute has been popped (a consistent
  // cut — FIFO rings guarantee each shard's events up to that minute
  // precede its mark).
  struct PendingMark {
    std::size_t workers = 0;
    std::vector<EngineBsCursor> bs_states;
    std::vector<KindTotals> per_shard;
  };
  std::map<std::uint64_t, PendingMark> pending_marks;
  std::uint64_t checkpointed_minute = start_minute;
  auto last_snapshot = std::chrono::steady_clock::now();
  std::uint64_t delivered_since_check = 0;

  auto maybe_snapshot = [&] {
    if (config_.telemetry_period_s <= 0.0 || !snapshot_callback_) return;
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - last_snapshot).count() <
        config_.telemetry_period_s) {
      return;
    }
    last_snapshot = now;
    snapshot_callback_(telemetry.snapshot(queue_depth()));
  };

  // Checkpoint writes retry with exponential backoff on retryable errors
  // (transient I/O); foreign or non-retryable exceptions propagate at once.
  auto save_checkpoint = [&](const EngineCheckpoint& cp) {
    double backoff_ms = std::max(0.0, config_.checkpoint_backoff_ms);
    for (std::size_t attempt = 1;; ++attempt) {
      try {
        cp.save(config_.checkpoint_path, config_.fault);
        return;
      } catch (const Error& e) {
        if (!e.retryable() || attempt >= config_.checkpoint_max_attempts) {
          throw;
        }
      }
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          backoff_ms * (1.0 + 0.25 * backoff_rng.uniform())));
      backoff_ms *= 2.0;
    }
  };

  // Returns true when the event reached the sink, false when the failure
  // was absorbed as a sink error (kDegrade); throws under kFailFast.
  auto deliver_event = [&](const StreamEvent& ev) -> bool {
    const EventKind kind = ev.kind();
    try {
      fault_fire(config_.fault,
                 kSinkFaultPoint[static_cast<std::size_t>(kind)]);
      sink.on_event(ev);
      return true;
    } catch (...) {
      if (config_.sink_error_policy == SinkErrorPolicy::kFailFast) {
        // The in-flight event dies with the abort; count it discarded so
        // the per-kind conservation identity stays exact on failure paths.
        telemetry.count_discarded(kind);
        throw;
      }
      telemetry.count_sink_error(kind);
      return false;
    }
  };

  auto deliver = [&](RingItem& item, std::size_t w) {
    switch (item.kind) {
      case RingItem::Kind::kBatch: {
        // Consumed counts aggregate locally across the batch — one atomic
        // add per kind instead of per event — and flush on both the
        // success and the failure path, so the identity stays exact.
        std::array<std::uint64_t, kNumEventKinds> consumed{};
        double volume = 0.0;
        for (std::size_t i = 0; i < item.batch.size(); ++i) {
          const StreamEvent& ev = item.batch[i];
          try {
            if (!deliver_event(ev)) continue;
          } catch (...) {
            // The batch is already popped from the ring, so the events
            // behind the failing one can never be delivered or drained:
            // count them discarded to keep the per-kind identity exact.
            for (std::size_t j = i + 1; j < item.batch.size(); ++j) {
              telemetry.count_discarded(item.batch[j].kind());
            }
            telemetry.count_consumed_bulk(consumed, volume);
            throw;
          }
          ++consumed[static_cast<std::size_t>(ev.kind())];
          if (ev.kind() == EventKind::kSession) {
            volume += std::get<SessionEvent>(ev.payload).session.volume_mb;
          }
        }
        telemetry.count_consumed_bulk(consumed, volume);
        break;
      }
      case RingItem::Kind::kBsDayVolume: {
        auto& volumes = day_volumes[item.day];
        if (volumes.empty()) volumes.assign(network.size(), 0.0);
        volumes[item.bs] = item.bs_day_volume_mb;
        break;
      }
      case RingItem::Kind::kDayEnd: {
        shard_next_day[w] = static_cast<std::size_t>(item.day) + 1;
        shard_produced[w] = item.shard_produced;
        const std::size_t day_low_water =
            *std::min_element(shard_next_day.begin(), shard_next_day.end());
        if (day_low_water > checkpointed_day) {
          // Rings are FIFO and every kBsDayVolume precedes its shard's
          // kDayEnd, so all per-BS volumes of the finished days are here.
          for (std::size_t d = checkpointed_day; d < day_low_water; ++d) {
            const auto it = day_volumes.find(d);
            double day_total = 0.0;
            if (it != day_volumes.end()) {
              for (double v : it->second) day_total += v;
              day_volumes.erase(it);
            }
            committed_volume += day_total;
          }
          checkpointed_day = day_low_water;
          KindTotals totals{};
          for (std::size_t i = 0; i < num_workers; ++i) {
            for (std::size_t k = 0; k < kNumEventKinds; ++k) {
              totals[k] += shard_produced[i][k];
            }
          }
          checkpointed_minute =
              static_cast<std::uint64_t>(checkpointed_day) * kMinutesPerDay;
          // Marks inside the now-checkpointed range are obsolete: a
          // day-boundary checkpoint supersedes any mid-day cut before it.
          pending_marks.erase(pending_marks.begin(),
                              pending_marks.upper_bound(checkpointed_minute));
          result.checkpoint = make_checkpoint(checkpointed_minute, totals,
                                              committed_volume,
                                              shard_produced);
          // Commit order matters for exactly-once recovery: the callback
          // (the Supervisor flushing buffered minutes downstream) runs
          // before the checkpoint is persisted, so a failed save leaves the
          // downstream state covered by the in-memory checkpoint, never
          // ahead of it.
          if (checkpoint_callback_) checkpoint_callback_(result.checkpoint);
          if (!config_.checkpoint_path.empty()) {
            save_checkpoint(result.checkpoint);
          }
        }
        break;
      }
      case RingItem::Kind::kMinuteMark: {
        if (item.minute_end <= checkpointed_minute) break;  // superseded
        PendingMark& mark = pending_marks[item.minute_end];
        if (mark.per_shard.empty()) mark.per_shard.assign(num_workers, {});
        mark.per_shard[w] = item.shard_produced;
        mark.bs_states.insert(mark.bs_states.end(),
                              item.bs_states.begin(), item.bs_states.end());
        if (++mark.workers < num_workers) break;
        // Every shard has crossed the mark: take the mid-day checkpoint.
        // committed_volume is exact through the last fully finished day —
        // each worker's kDayEnd for that day precedes its mark in the FIFO
        // ring — and the in-progress day's partial volumes ride in the
        // per-BS cursors.
        std::sort(mark.bs_states.begin(), mark.bs_states.end(),
                  [](const EngineBsCursor& a, const EngineBsCursor& b) {
                    return a.bs < b.bs;
                  });
        KindTotals totals{};
        for (std::size_t i = 0; i < num_workers; ++i) {
          for (std::size_t k = 0; k < kNumEventKinds; ++k) {
            totals[k] += mark.per_shard[i][k];
          }
        }
        checkpointed_minute = item.minute_end;
        result.checkpoint =
            make_checkpoint(checkpointed_minute, totals, committed_volume,
                            mark.per_shard, std::move(mark.bs_states));
        pending_marks.erase(pending_marks.begin(),
                            pending_marks.upper_bound(checkpointed_minute));
        if (checkpoint_callback_) checkpoint_callback_(result.checkpoint);
        if (!config_.checkpoint_path.empty()) {
          save_checkpoint(result.checkpoint);
        }
        break;
      }
    }
  };

  try {
    for (;;) {
      if (stop.requested()) break;  // worker fault or watchdog stall
      fault_fire(config_.fault, "consumer.loop");
      bool any = false;
      for (std::size_t w = 0; w < num_workers; ++w) {
        RingItem item;
        while (shards[w]->ring().try_pop(item)) {
          any = true;
          deliver(item, w);
          delivered_since_check += std::max<std::size_t>(
              1, item.kind == RingItem::Kind::kBatch ? item.batch.size() : 1);
          if (delivered_since_check >= 4096) {
            delivered_since_check = 0;
            maybe_snapshot();
          }
        }
      }
      if (!any) {
        if (active.load(std::memory_order_acquire) == 0) {
          // Workers are done; one final sweep drains anything pushed
          // between our empty check and their exit.
          for (std::size_t w = 0; w < num_workers; ++w) {
            RingItem item;
            while (shards[w]->ring().try_pop(item)) deliver(item, w);
          }
          break;
        }
        maybe_snapshot();
        std::this_thread::yield();
      }
    }
  } catch (...) {
    // Sink failure under kFailFast, checkpoint save that exhausted its
    // retries, or a checkpoint-callback error.
    stop.signal(std::current_exception());
  }
  if (stop.requested()) {
    // Unblock producers (they check the flag while spinning on a full ring
    // and at every minute tick), draining without delivering. Every drained
    // data event is counted, so the per-kind accounting identity stays
    // exact on the failure path too.
    for (;;) {
      bool any = false;
      RingItem item;
      for (const auto& s : shards) {
        while (s->ring().try_pop(item)) {
          any = true;
          if (item.kind == RingItem::Kind::kBatch) {
            for (const StreamEvent& ev : item.batch) {
              telemetry.count_discarded(ev.kind());
            }
          }
        }
      }
      if (!any && active.load(std::memory_order_acquire) == 0) break;
      if (!any) std::this_thread::yield();
    }
  }
  engine_done.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  if (watchdog.joinable()) watchdog.join();

  if (stop.requested()) {
    // Events an aborted worker staged but never flushed were produced and
    // undelivered: count them discarded so the identity closes exactly.
    for (const auto& s : shards) {
      for (const StreamEvent& ev : s->pending()) {
        telemetry.count_discarded(ev.kind());
      }
    }
  }

  if (std::exception_ptr error = stop.first_error()) {
    // Final diagnostic snapshot before the failure propagates: the last
    // exact accounting of what was produced, delivered, shed, and
    // discarded.
    result.telemetry = telemetry.snapshot(0);
    if (snapshot_callback_) snapshot_callback_(result.telemetry);
    std::rethrow_exception(error);
  }

  result.telemetry = telemetry.snapshot(0);
  if (snapshot_callback_) snapshot_callback_(result.telemetry);
  return result;
}

}  // namespace mtd
