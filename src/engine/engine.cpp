#include "engine/engine.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <exception>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "common/time_utils.hpp"
#include "engine/fault.hpp"
#include "engine/spsc_ring.hpp"

namespace mtd {

const char* to_string(BackpressurePolicy p) noexcept {
  switch (p) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kDropNewest: return "drop";
  }
  return "?";
}

const char* to_string(SinkErrorPolicy p) noexcept {
  switch (p) {
    case SinkErrorPolicy::kFailFast: return "fail_fast";
    case SinkErrorPolicy::kDegrade: return "degrade";
  }
  return "?";
}

namespace {

std::string hex_str(std::uint64_t v) {
  char buf[19] = "0x";
  const auto [ptr, ec] = std::to_chars(buf + 2, buf + sizeof(buf), v, 16);
  return std::string(buf, ptr);
}

/// Cooperative cross-thread failure propagation: any thread (worker,
/// consumer, watchdog) signals the first failure it sees; producers observe
/// the flag at every minute tick and while spinning on a full ring, the
/// consumer at every sweep. Only the first exception is kept — later ones
/// are cascade effects of the same abort.
class StopState {
 public:
  std::atomic<bool> flag{false};

  void signal(std::exception_ptr error) noexcept MTD_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (!first_) first_ = std::move(error);
    }
    flag.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool requested() const noexcept {
    return flag.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::exception_ptr first_error() MTD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return first_;
  }

 private:
  Mutex mutex_;
  std::exception_ptr first_ MTD_GUARDED_BY(mutex_);
};

/// One entry of a worker's ring. kMinute and kSession reuse the Session
/// bs/day/minute fields. At each day boundary a worker emits one
/// kBsDayVolume per BS (the volume that BS produced that day) followed by
/// a kDayEnd with its cumulative session counter: the consumer commits the
/// day's volume as a fold over BSs in canonical index order, which keeps
/// the checkpoint's volume counter bit-identical across worker counts and
/// stop/resume splits.
struct EngineEvent {
  enum class Kind : std::uint8_t { kMinute, kSession, kBsDayVolume, kDayEnd };
  Kind kind = Kind::kMinute;
  std::uint32_t count = 0;  // kMinute: arrivals that minute
  Session session;
  std::uint64_t shard_sessions = 0;  // kDayEnd: produced so far this run
  double bs_day_volume_mb = 0.0;     // kBsDayVolume: this BS, this day
};

/// Scaled virtual clock: minute m of the replay maps to a wall-clock
/// deadline; every worker paces itself against the shared epoch, so no
/// cross-thread coordination is needed.
struct VirtualClock {
  double time_scale = 0.0;  // <= 0: max throughput, never waits
  std::chrono::steady_clock::time_point epoch;
  std::uint64_t base_minute = 0;

  void wait_until(std::uint64_t minute) const {
    if (time_scale <= 0.0) return;
    const double wall_s =
        static_cast<double>(minute - base_minute) *
        static_cast<double>(kSecondsPerMinute) / time_scale;
    std::this_thread::sleep_until(epoch + std::chrono::duration_cast<
                                              std::chrono::steady_clock::duration>(
                                      std::chrono::duration<double>(wall_s)));
  }
};

class ShardWorker {
 public:
  ShardWorker(const TraceGenerator& generator, std::vector<std::uint32_t> bss,
              std::size_t queue_capacity)
      : generator_(&generator), bss_(std::move(bss)), ring_(queue_capacity) {}

  SpscRing<EngineEvent>& ring() noexcept { return ring_; }

  void run(std::size_t first_day, std::size_t last_day,
           const VirtualClock& clock, BackpressurePolicy policy,
           Telemetry::PerWorker& tel, const std::atomic<bool>& abort,
           FaultInjector* fault) {
    const Network& network = generator_->network();
    std::vector<BaseStation> scaled(bss_.size());
    std::vector<Rng> rngs(bss_.size(), Rng(0));
    std::vector<double> day_volume(bss_.size(), 0.0);

    for (std::size_t day = first_day; day < last_day; ++day) {
      fault_fire(fault, "worker.day");
      // Day boundary: every (BS, day) stream re-seeds, which is what makes
      // day-boundary checkpoints O(1) (see engine/checkpoint.hpp).
      for (std::size_t i = 0; i < bss_.size(); ++i) {
        const BaseStation& bs = network[bss_[i]];
        scaled[i] = generator_->day_scaled(bs, day);
        rngs[i] = generator_->bs_day_rng(bs, day);
        day_volume[i] = 0.0;
      }
      for (std::size_t minute = 0; minute < kMinutesPerDay; ++minute) {
        const std::uint64_t abs_minute = day * kMinutesPerDay + minute;
        clock.wait_until(abs_minute);
        if (abort.load(std::memory_order_relaxed)) return;
        for (std::size_t i = 0; i < bss_.size(); ++i) {
          const BaseStation& bs = network[bss_[i]];
          const std::uint32_t count =
              ArrivalProcess(scaled[i]).sample(minute, rngs[i]);
          EngineEvent ev;
          ev.kind = EngineEvent::Kind::kMinute;
          ev.count = count;
          ev.session.bs = bs.id;
          ev.session.day = static_cast<std::uint16_t>(day);
          ev.session.minute_of_day = static_cast<std::uint16_t>(minute);
          if (!push(std::move(ev), policy, tel, &tel.dropped_minutes,
                    abort)) {
            return;  // aborted while blocked
          }
          for (std::uint32_t k = 0; k < count; ++k) {
            fault_fire(fault, "worker.session");
            EngineEvent sev;
            sev.kind = EngineEvent::Kind::kSession;
            sev.session =
                generator_->sample_session(bs, day, minute, rngs[i]);
            const double volume = sev.session.volume_mb;
            if (!push(std::move(sev), policy, tel, &tel.dropped_sessions,
                      abort)) {
              return;
            }
            // Produced counters include dropped events: they were
            // generated; the drop counters say what never reached the sink.
            ++sessions_;
            day_volume[i] += volume;
            tel.sessions_produced.store(sessions_,
                                        std::memory_order_relaxed);
          }
        }
        tel.produced_minute.store(abs_minute + 1, std::memory_order_relaxed);
      }
      // Per-BS day volumes, then the day-end marker that gates checkpoints;
      // all of these always block, never drop.
      for (std::size_t i = 0; i < bss_.size(); ++i) {
        EngineEvent dv;
        dv.kind = EngineEvent::Kind::kBsDayVolume;
        dv.session.bs = bss_[i];
        dv.session.day = static_cast<std::uint16_t>(day);
        dv.bs_day_volume_mb = day_volume[i];
        if (!push(std::move(dv), BackpressurePolicy::kBlock, tel, nullptr,
                  abort)) {
          return;
        }
      }
      EngineEvent end;
      end.kind = EngineEvent::Kind::kDayEnd;
      end.session.day = static_cast<std::uint16_t>(day);
      end.shard_sessions = sessions_;
      if (!push(std::move(end), BackpressurePolicy::kBlock, tel, nullptr,
                abort)) {
        return;
      }
    }
  }

 private:
  /// Pushes one event under the backpressure policy. Returns false only
  /// when aborted while waiting for ring space.
  bool push(EngineEvent&& ev, BackpressurePolicy policy,
            Telemetry::PerWorker& tel,
            std::atomic<std::uint64_t>* drop_counter,
            const std::atomic<bool>& abort) {
    if (ring_.try_push(std::move(ev))) return true;
    if (policy == BackpressurePolicy::kDropNewest && drop_counter != nullptr) {
      drop_counter->fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    const auto blocked_at = std::chrono::steady_clock::now();
    while (!ring_.try_push(std::move(ev))) {
      if (abort.load(std::memory_order_relaxed)) return false;
      std::this_thread::yield();
    }
    tel.stall_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - blocked_at)
                .count()),
        std::memory_order_relaxed);
    return true;
  }

  const TraceGenerator* generator_;
  std::vector<std::uint32_t> bss_;
  SpscRing<EngineEvent> ring_;
  std::uint64_t sessions_ = 0;
};

}  // namespace

StreamEngine::StreamEngine(const Network& network, const TraceConfig& trace,
                           EngineConfig config)
    : generator_(network, trace),
      config_(std::move(config)),
      fingerprint_(network_fingerprint(network)) {
  if (config_.num_workers == 0) {
    config_.num_workers =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  config_.num_workers = std::min(config_.num_workers, network.size());
  require(config_.queue_capacity >= 2,
          "StreamEngine: queue_capacity must be at least 2");
  require(config_.checkpoint_max_attempts >= 1,
          "StreamEngine: checkpoint_max_attempts must be at least 1");
}

EngineResult StreamEngine::run(TraceSink& sink) {
  return run_days(sink, 0, 0, 0, 0.0);
}

EngineResult StreamEngine::resume(const EngineCheckpoint& from,
                                  TraceSink& sink) {
  const TraceConfig& trace = generator_.config();
  const auto mismatch = [](const char* field, const std::string& expected,
                           const std::string& actual) {
    return InvalidArgument(std::string("StreamEngine::resume: checkpoint "
                                       "mismatch on ") +
                           field + ": engine expects " + expected +
                           ", checkpoint has " + actual);
  };
  if (from.seed != trace.seed) {
    throw mismatch("trace.seed", hex_str(trace.seed), hex_str(from.seed));
  }
  if (from.num_days != trace.num_days) {
    throw mismatch("trace.num_days", std::to_string(trace.num_days),
                   std::to_string(from.num_days));
  }
  if (from.rate_scale != trace.rate_scale) {
    throw mismatch("trace.rate_scale", std::to_string(trace.rate_scale),
                   std::to_string(from.rate_scale));
  }
  if (from.weekend_rate_factor != trace.weekend_rate_factor) {
    throw mismatch("trace.weekend_rate_factor",
                   std::to_string(trace.weekend_rate_factor),
                   std::to_string(from.weekend_rate_factor));
  }
  if (from.network_fingerprint != fingerprint_) {
    throw mismatch("network_fingerprint", hex_str(fingerprint_),
                   hex_str(from.network_fingerprint));
  }
  if (from.next_day > trace.num_days) {
    throw InvalidArgument(
        "StreamEngine::resume: checkpoint cursor (next_day=" +
        std::to_string(from.next_day) + ") is beyond the horizon (num_days=" +
        std::to_string(trace.num_days) + ")");
  }
  return run_days(sink, from.next_day, from.sessions_emitted,
                  from.minutes_emitted, from.volume_mb);
}

EngineResult StreamEngine::run_days(TraceSink& sink, std::size_t first_day,
                                    std::uint64_t prior_sessions,
                                    std::uint64_t prior_minutes,
                                    double prior_volume) {
  const Network& network = generator_.network();
  const TraceConfig& trace = generator_.config();
  const std::size_t budget =
      config_.stop_after_days == 0 ? trace.num_days : config_.stop_after_days;
  const std::size_t last_day =
      std::min(trace.num_days, first_day + budget);
  const std::size_t num_workers = config_.num_workers;

  // `volume_mb` is the absolute committed volume: prior volume plus one
  // per-day increment per finished day, each folded over BSs in index
  // order. That single canonical association order makes the counter
  // bit-identical across worker counts and stop/resume splits.
  auto make_checkpoint = [&](std::size_t next_day, std::uint64_t sessions,
                             double volume_mb,
                             const std::vector<std::uint64_t>& per_shard) {
    EngineCheckpoint cp;
    cp.seed = trace.seed;
    cp.num_days = trace.num_days;
    cp.rate_scale = trace.rate_scale;
    cp.weekend_rate_factor = trace.weekend_rate_factor;
    cp.network_fingerprint = fingerprint_;
    cp.next_day = next_day;
    cp.clock_minute = next_day * kMinutesPerDay;
    cp.sessions_emitted = prior_sessions + sessions;
    cp.minutes_emitted =
        prior_minutes + static_cast<std::uint64_t>(network.size()) *
                            kMinutesPerDay * (next_day - first_day);
    cp.volume_mb = volume_mb;
    for (std::size_t w = 0; w < per_shard.size(); ++w) {
      cp.shards.push_back(EngineShardCursor{w, next_day, per_shard[w]});
    }
    return cp;
  };

  Telemetry telemetry(num_workers);
  telemetry.start(prior_sessions, prior_volume);
  for (std::size_t w = 0; w < num_workers; ++w) {
    telemetry.worker(w).produced_minute.store(first_day * kMinutesPerDay,
                                              std::memory_order_relaxed);
  }

  // Nothing to stream (resume of a finished replay, or zero-day budget).
  if (first_day >= last_day) {
    EngineResult result;
    result.checkpoint = make_checkpoint(
        first_day, 0, prior_volume, std::vector<std::uint64_t>(num_workers, 0));
    result.telemetry = telemetry.snapshot(0);
    return result;
  }

  // Strided BS partition keeps the decile mix balanced per shard. Workers
  // hold atomics (the ring), so they live behind stable pointers.
  std::vector<std::unique_ptr<ShardWorker>> shards;
  shards.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    std::vector<std::uint32_t> bss;
    for (std::size_t b = w; b < network.size(); b += num_workers) {
      bss.push_back(static_cast<std::uint32_t>(b));
    }
    shards.push_back(std::make_unique<ShardWorker>(generator_, std::move(bss),
                                                   config_.queue_capacity));
  }

  VirtualClock clock{config_.time_scale, std::chrono::steady_clock::now(),
                     first_day * kMinutesPerDay};
  StopState stop;
  std::atomic<std::size_t> active{num_workers};
  // Deterministic backoff jitter for checkpoint-write retries: seeded from
  // the trace, not the wall clock, so a replayed failure schedule produces
  // the same retry timing.
  Rng backoff_rng(trace.seed ^ 0x636b7074ULL /* "ckpt" */);

  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    threads.emplace_back([&, w] {
      try {
        shards[w]->run(first_day, last_day, clock, config_.backpressure,
                       telemetry.worker(w), stop.flag, config_.fault);
      } catch (...) {
        // First-exception capture: a worker fault stops the whole engine;
        // the consumer notices, drains, joins, and rethrows this.
        stop.signal(std::current_exception());
      }
      active.fetch_sub(1, std::memory_order_release);
    });
  }

  auto queue_depth = [&] {
    std::uint64_t depth = 0;
    for (const auto& s : shards) depth += s->ring().size();
    return depth;
  };

  // Watchdog: aborts the run when no counter moves for the configured
  // deadline — a consumer wedged in a sink call, a stuck worker, a
  // livelocked pipeline. It only observes atomics, so it can never deadlock
  // with the threads it guards; a genuinely unbounded stall inside a sink
  // callback is beyond its reach (we never detach threads).
  std::atomic<bool> engine_done{false};
  std::thread watchdog;
  if (config_.watchdog_timeout_s > 0.0) {
    watchdog = std::thread([&] {
      const auto deadline =
          std::chrono::duration<double>(config_.watchdog_timeout_s);
      const auto poll = std::min(std::chrono::duration<double>(0.05),
                                 deadline / 4.0);
      auto signature = [&] {
        const TelemetrySnapshot s = telemetry.snapshot(0);
        return s.sessions_produced + s.sessions_consumed + s.minutes_consumed +
               s.dropped_sessions + s.dropped_minutes + s.sink_errors +
               s.sink_error_minutes + s.discarded_sessions +
               s.discarded_minutes + s.clock_minute;
      };
      std::uint64_t last_signature = signature();
      auto last_change = std::chrono::steady_clock::now();
      while (!engine_done.load(std::memory_order_acquire) &&
             !stop.requested()) {
        std::this_thread::sleep_for(poll);
        const std::uint64_t now_signature = signature();
        const auto now = std::chrono::steady_clock::now();
        if (now_signature != last_signature) {
          last_signature = now_signature;
          last_change = now;
          continue;
        }
        if (now - last_change >= deadline) {
          stop.signal(std::make_exception_ptr(EngineError(
              "StreamEngine: watchdog detected a stalled pipeline (no "
              "progress for " +
                  std::to_string(config_.watchdog_timeout_s) + " s)",
              /*retryable=*/true)));
          break;
        }
      }
    });
  }

  // Consumer: this thread drains every ring into the sink.
  EngineResult result;
  std::vector<std::size_t> shard_next_day(num_workers, first_day);
  std::vector<std::uint64_t> shard_sessions(num_workers, 0);
  // Per-BS volumes of each not-yet-committed day; folded into
  // committed_volume in (day, BS) order once every shard passes the day.
  std::map<std::size_t, std::vector<double>> day_volumes;
  double committed_volume = prior_volume;
  std::size_t checkpointed_day = first_day;  // next_day of the last checkpoint
  auto last_snapshot = std::chrono::steady_clock::now();
  std::uint64_t delivered_since_check = 0;

  auto maybe_snapshot = [&] {
    if (config_.telemetry_period_s <= 0.0 || !snapshot_callback_) return;
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - last_snapshot).count() <
        config_.telemetry_period_s) {
      return;
    }
    last_snapshot = now;
    snapshot_callback_(telemetry.snapshot(queue_depth()));
  };

  // Checkpoint writes retry with exponential backoff on retryable errors
  // (transient I/O); foreign or non-retryable exceptions propagate at once.
  auto save_checkpoint = [&](const EngineCheckpoint& cp) {
    double backoff_ms = std::max(0.0, config_.checkpoint_backoff_ms);
    for (std::size_t attempt = 1;; ++attempt) {
      try {
        cp.save(config_.checkpoint_path, config_.fault);
        return;
      } catch (const Error& e) {
        if (!e.retryable() || attempt >= config_.checkpoint_max_attempts) {
          throw;
        }
      }
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          backoff_ms * (1.0 + 0.25 * backoff_rng.uniform())));
      backoff_ms *= 2.0;
    }
  };

  auto deliver = [&](EngineEvent& ev, std::size_t w) {
    switch (ev.kind) {
      case EngineEvent::Kind::kMinute:
        try {
          fault_fire(config_.fault, "sink.minute");
          sink.on_minute(network[ev.session.bs], ev.session.day,
                         ev.session.minute_of_day, ev.count);
        } catch (...) {
          if (config_.sink_error_policy == SinkErrorPolicy::kFailFast) {
            // The in-flight event dies with the abort; count it discarded
            // so the conservation identity stays exact on failure paths.
            telemetry.count_discarded_minute();
            throw;
          }
          telemetry.count_sink_error(/*minute=*/true);
          break;
        }
        telemetry.count_minute();
        break;
      case EngineEvent::Kind::kSession:
        try {
          fault_fire(config_.fault, "sink.session");
          sink.on_session(ev.session);
        } catch (...) {
          if (config_.sink_error_policy == SinkErrorPolicy::kFailFast) {
            telemetry.count_discarded_session();
            throw;
          }
          telemetry.count_sink_error(/*minute=*/false);
          break;
        }
        telemetry.count_session(ev.session.volume_mb);
        break;
      case EngineEvent::Kind::kBsDayVolume: {
        auto& volumes = day_volumes[ev.session.day];
        if (volumes.empty()) volumes.assign(network.size(), 0.0);
        volumes[ev.session.bs] = ev.bs_day_volume_mb;
        break;
      }
      case EngineEvent::Kind::kDayEnd: {
        shard_next_day[w] = static_cast<std::size_t>(ev.session.day) + 1;
        shard_sessions[w] = ev.shard_sessions;
        const std::size_t day_low_water =
            *std::min_element(shard_next_day.begin(), shard_next_day.end());
        if (day_low_water > checkpointed_day) {
          // Rings are FIFO and every kBsDayVolume precedes its shard's
          // kDayEnd, so all per-BS volumes of the finished days are here.
          for (std::size_t d = checkpointed_day; d < day_low_water; ++d) {
            const auto it = day_volumes.find(d);
            double day_total = 0.0;
            if (it != day_volumes.end()) {
              for (double v : it->second) day_total += v;
              day_volumes.erase(it);
            }
            committed_volume += day_total;
          }
          checkpointed_day = day_low_water;
          std::uint64_t sessions = 0;
          for (std::size_t i = 0; i < num_workers; ++i) {
            sessions += shard_sessions[i];
          }
          result.checkpoint = make_checkpoint(checkpointed_day, sessions,
                                              committed_volume, shard_sessions);
          // Commit order matters for exactly-once recovery: the callback
          // (the Supervisor flushing buffered days downstream) runs before
          // the checkpoint is persisted, so a failed save leaves the
          // downstream state covered by the in-memory checkpoint, never
          // ahead of it.
          if (checkpoint_callback_) checkpoint_callback_(result.checkpoint);
          if (!config_.checkpoint_path.empty()) {
            save_checkpoint(result.checkpoint);
          }
        }
        break;
      }
    }
  };

  try {
    for (;;) {
      if (stop.requested()) break;  // worker fault or watchdog stall
      fault_fire(config_.fault, "consumer.loop");
      bool any = false;
      for (std::size_t w = 0; w < num_workers; ++w) {
        EngineEvent ev;
        while (shards[w]->ring().try_pop(ev)) {
          any = true;
          deliver(ev, w);
          if (++delivered_since_check >= 4096) {
            delivered_since_check = 0;
            maybe_snapshot();
          }
        }
      }
      if (!any) {
        if (active.load(std::memory_order_acquire) == 0) {
          // Workers are done; one final sweep drains anything pushed
          // between our empty check and their exit.
          for (std::size_t w = 0; w < num_workers; ++w) {
            EngineEvent ev;
            while (shards[w]->ring().try_pop(ev)) deliver(ev, w);
          }
          break;
        }
        maybe_snapshot();
        std::this_thread::yield();
      }
    }
  } catch (...) {
    // Sink failure under kFailFast, checkpoint save that exhausted its
    // retries, or a checkpoint-callback error.
    stop.signal(std::current_exception());
  }
  if (stop.requested()) {
    // Unblock producers (they check the flag while spinning on a full ring
    // and at every minute tick), draining without delivering. Every drained
    // event is counted, so produced/consumed/dropped accounting stays exact
    // on the failure path too.
    for (;;) {
      bool any = false;
      EngineEvent ev;
      for (const auto& s : shards) {
        while (s->ring().try_pop(ev)) {
          any = true;
          if (ev.kind == EngineEvent::Kind::kSession) {
            telemetry.count_discarded_session();
          } else if (ev.kind == EngineEvent::Kind::kMinute) {
            telemetry.count_discarded_minute();
          }
        }
      }
      if (!any && active.load(std::memory_order_acquire) == 0) break;
      if (!any) std::this_thread::yield();
    }
  }
  engine_done.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  if (watchdog.joinable()) watchdog.join();

  if (std::exception_ptr error = stop.first_error()) {
    // Final diagnostic snapshot before the failure propagates: the last
    // exact accounting of what was produced, delivered, shed, and
    // discarded.
    result.telemetry = telemetry.snapshot(0);
    if (snapshot_callback_) snapshot_callback_(result.telemetry);
    std::rethrow_exception(error);
  }

  result.telemetry = telemetry.snapshot(0);
  if (snapshot_callback_) snapshot_callback_(result.telemetry);
  return result;
}

}  // namespace mtd
