// Checkpoint-based auto-recovery around StreamEngine.
//
// The Supervisor wraps run()/resume() in a bounded restart loop: when a run
// fails with a retryable error (worker fault, watchdog-detected stall,
// transient checkpoint I/O), it reloads the last good checkpoint — a day
// boundary, or any minute-interval mark when the engine runs with
// checkpoint_interval_minutes — and resumes, with exponential backoff
// between attempts (jitter drawn from a seeded RNG, so failure schedules
// replay reproducibly). Because every (BS, day) RNG stream is independent
// and mid-day checkpoints carry the raw stream cursors, the recovered
// stream is bit-identical to an unfailed run either way.
//
// Exactly-once delivery across restarts: the engine's sink sees events
// past the last checkpoint before the next one commits, so a naive restart
// would replay that tail into the downstream sink twice. The Supervisor
// therefore interposes a commit buffer — events are held per simulated
// minute and flushed downstream only when the engine checkpoints past that
// minute; on failure the uncommitted tail is discarded and regenerated
// from the checkpoint. Minute granularity makes the buffered window the
// checkpoint interval, not a whole day. The one hole is the downstream
// sink itself throwing mid-flush (its state is then unknown); such errors
// are foreign/non-retryable and end supervision.
//
// The product of a supervised run is a RunReport: every attempt with its
// day range, failure cause, retryability, and the backoff applied — the
// operational record a replay of the paper's 45-day horizon needs when
// transient faults are a matter of when, not if.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.hpp"

namespace mtd {

struct SupervisorConfig {
  /// Restarts after the first attempt; attempts = max_restarts + 1.
  std::size_t max_restarts = 3;
  /// Backoff before restart k is initial * multiplier^(k-1) * (1 + U[0,
  /// jitter)), with U drawn from a seeded RNG (see backoff_seed).
  double backoff_initial_ms = 25.0;
  double backoff_multiplier = 2.0;
  double backoff_jitter = 0.25;
  /// Seed of the backoff-jitter RNG; unset derives it from the trace seed.
  /// Two supervised runs with the same seed and failure schedule apply
  /// identical backoff sequences (asserted in tests), which keeps chaos
  /// runs reproducible end to end.
  std::optional<std::uint64_t> backoff_seed;
  /// Buffer sink output per simulated minute and flush on checkpoint
  /// commit (see file header). Disable only for idempotent sinks that
  /// tolerate replayed uncommitted tails; the recovered stream then
  /// degrades to at-least-once.
  bool buffer_uncommitted = true;
};

/// One engine attempt inside a supervised run.
struct SupervisorAttempt {
  std::size_t attempt = 0;      ///< 1-based
  std::size_t start_day = 0;    ///< day the attempt started/resumed from
  std::size_t reached_day = 0;  ///< day of the last committed checkpoint
  /// Simulated-minute resolution of the same cursors: which absolute
  /// minute the attempt resumed from and the clock_minute of its last
  /// committed checkpoint (equal to the day cursors * 1440 when the engine
  /// checkpoints at day boundaries only).
  std::uint64_t start_minute = 0;
  std::uint64_t reached_minute = 0;
  std::string error;            ///< empty when the attempt succeeded
  bool retryable = false;
  double backoff_ms = 0.0;      ///< wait applied before the next attempt
};

/// Outcome of a supervised run. `result` is meaningful when `succeeded`.
struct RunReport {
  bool succeeded = false;
  std::vector<SupervisorAttempt> attempts;
  EngineResult result;

  [[nodiscard]] std::size_t restarts() const noexcept {
    return attempts.empty() ? 0 : attempts.size() - 1;
  }
  /// Flat JSON for ops tooling: outcome plus the per-attempt record.
  [[nodiscard]] Json to_json() const;
};

class Supervisor {
 public:
  /// `network` must outlive the Supervisor. A FaultInjector armed in
  /// `engine_config.fault` is honored by every attempt.
  Supervisor(const Network& network, const TraceConfig& trace,
             EngineConfig engine_config = {}, SupervisorConfig config = {});

  /// Supervised equivalent of StreamEngine::run. Never throws for
  /// retryable engine failures while restart budget remains; when the
  /// budget is exhausted or the failure is not retryable, the report
  /// records every attempt and `succeeded` is false.
  [[nodiscard]] RunReport run(TraceSink& sink);

  /// Supervised equivalent of StreamEngine::resume.
  [[nodiscard]] RunReport resume(const EngineCheckpoint& from, TraceSink& sink);

  /// Telemetry passthrough, re-registered on every attempt's engine.
  void on_snapshot(std::function<void(const TelemetrySnapshot&)> callback) {
    snapshot_callback_ = std::move(callback);
  }

  [[nodiscard]] const SupervisorConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] RunReport supervise(std::optional<EngineCheckpoint> from,
                                    TraceSink& sink);

  const Network* network_;
  TraceConfig trace_;
  EngineConfig engine_config_;
  SupervisorConfig config_;
  std::function<void(const TelemetrySnapshot&)> snapshot_callback_;
};

}  // namespace mtd
