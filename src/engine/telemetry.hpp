// Engine telemetry: lock-free counters and periodic JSON snapshots.
//
// Shard workers and the consumer thread update disjoint sets of atomic
// counters (relaxed ordering; the numbers feed monitoring, not control
// flow). Counters are kept per event kind (minute, session, segment,
// packet — see events/stream_event.hpp): the conservation identity
// produced == consumed + dropped + sink_errors + discarded holds for every
// kind independently. Snapshots aggregate them into a consistent-enough
// view — exact once the engine has drained — and serialize to a flat JSON
// object (plus a per-kind "kinds" object) that benches and the example
// binary print as one line per snapshot.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "events/stream_event.hpp"
#include "io/json.hpp"

namespace mtd {

/// Counter block of one event kind. Drops happen under the kDropNewest
/// backpressure policy, sink errors under SinkErrorPolicy::kDegrade,
/// discards while draining on an abort.
struct EventKindCounters {
  std::uint64_t produced = 0;
  std::uint64_t consumed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t sink_errors = 0;
  std::uint64_t discarded = 0;

  /// Conservation identity of one kind: every produced event was delivered,
  /// shed by backpressure, rejected by the sink, or discarded on abort.
  [[nodiscard]] bool accounted_for() const noexcept {
    return produced == consumed + dropped + sink_errors + discarded;
  }
};

/// Point-in-time aggregate of the engine counters.
struct TelemetrySnapshot {
  double wall_seconds = 0.0;           // since run() started
  std::uint64_t clock_minute = 0;      // virtual-clock low-water mark
  std::array<EventKindCounters, kNumEventKinds> kinds{};
  double volume_mb = 0.0;              // traffic delivered to the sink
  std::uint64_t queue_depth = 0;       // sum of ring occupancies now
  double producer_stall_seconds = 0.0; // blocked-on-full time, all workers
  double sessions_per_second = 0.0;    // consumed / wall
  double events_per_second = 0.0;      // consumed, all kinds / wall
  double mbytes_per_second = 0.0;      // delivered volume / wall

  // Legacy scalar views of the per-kind counters; kept as first-class
  // fields (and JSON keys) for downstream tooling written before events
  // became typed. Always equal to the corresponding kinds[] entries.
  std::uint64_t sessions_produced = 0;
  std::uint64_t sessions_consumed = 0;
  std::uint64_t minutes_consumed = 0;
  std::uint64_t dropped_sessions = 0;
  std::uint64_t dropped_minutes = 0;
  std::uint64_t sink_errors = 0;          // failed session deliveries
  std::uint64_t sink_error_minutes = 0;   // failed minute deliveries
  std::uint64_t discarded_sessions = 0;
  std::uint64_t discarded_minutes = 0;

  [[nodiscard]] const EventKindCounters& of(EventKind kind) const noexcept {
    return kinds[static_cast<std::size_t>(kind)];
  }

  /// Re-derives the legacy scalar fields from kinds[].
  void sync_legacy_fields() noexcept;

  [[nodiscard]] bool sessions_accounted_for() const noexcept {
    return of(EventKind::kSession).accounted_for();
  }
  /// The conservation identity over every event kind.
  [[nodiscard]] bool accounted_for() const noexcept {
    for (const EventKindCounters& c : kinds) {
      if (!c.accounted_for()) return false;
    }
    return true;
  }

  /// Flat JSON object; legacy keys are stable for downstream tooling, the
  /// "kinds" member carries the per-kind counter blocks.
  [[nodiscard]] Json to_json() const;
  /// Inverse of to_json (round-trip exact for counters below 2^53).
  [[nodiscard]] static TelemetrySnapshot from_json(const Json& json);
};

/// Shared counter block. One PerWorker entry per shard keeps producer-side
/// counters uncontended (each worker writes only its own cache line).
class Telemetry {
 public:
  struct alignas(64) PerWorker {
    std::array<std::atomic<std::uint64_t>, kNumEventKinds> produced{};
    std::array<std::atomic<std::uint64_t>, kNumEventKinds> dropped{};
    std::atomic<std::uint64_t> stall_ns{0};
    /// Absolute virtual minute this worker has fully produced, +1 (0 = none).
    std::atomic<std::uint64_t> produced_minute{0};

    void count_produced(EventKind kind, std::uint64_t n = 1) noexcept {
      produced[static_cast<std::size_t>(kind)].fetch_add(
          n, std::memory_order_relaxed);
    }
    void count_dropped(EventKind kind) noexcept {
      dropped[static_cast<std::size_t>(kind)].fetch_add(
          1, std::memory_order_relaxed);
    }
  };

  explicit Telemetry(std::size_t num_workers);

  /// Re-arms the wall clock and seeds cumulative per-kind totals
  /// (checkpoint resume continues counting where the interrupted run
  /// stopped; the prior counts apply to produced and consumed alike — a
  /// checkpointed event was both).
  void start(const std::array<std::uint64_t, kNumEventKinds>& prior,
             double prior_volume_mb);

  [[nodiscard]] PerWorker& worker(std::size_t i) { return workers_[i]; }
  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }

  // Consumer-side counters (single writer).
  void count_consumed(EventKind kind, double volume_mb = 0.0) noexcept {
    consumed_[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
    add_volume(volume_mb);
  }
  /// Batched form: one atomic add per non-zero kind instead of one per
  /// event. The consumer aggregates a whole ring batch locally first —
  /// per-event fetch_add was measurable at the 10M events/s the batch
  /// kernel sustains.
  void count_consumed_bulk(
      const std::array<std::uint64_t, kNumEventKinds>& counts,
      double volume_mb) noexcept {
    for (std::size_t k = 0; k < kNumEventKinds; ++k) {
      if (counts[k] != 0) {
        consumed_[k].fetch_add(counts[k], std::memory_order_relaxed);
      }
    }
    add_volume(volume_mb);
  }
  /// A sink delivery failed under SinkErrorPolicy::kDegrade.
  void count_sink_error(EventKind kind) noexcept {
    sink_errors_[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
  }
  /// An event was drained without delivery while aborting.
  void count_discarded(EventKind kind) noexcept {
    discarded_[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Aggregates all counters. `queue_depth` is supplied by the engine (it
  /// owns the rings).
  [[nodiscard]] TelemetrySnapshot snapshot(std::uint64_t queue_depth) const;

 private:
  // Single consumer writes volume_mb_; the CAS loop never spins in
  // practice, it exists because fetch_add on atomic<double> is C++20
  // library support we cannot rely on everywhere.
  void add_volume(double volume_mb) noexcept {
    if (volume_mb == 0.0) return;
    double cur = volume_mb_.load(std::memory_order_relaxed);
    while (!volume_mb_.compare_exchange_weak(cur, cur + volume_mb,
                                             std::memory_order_relaxed)) {
    }
  }

  std::vector<PerWorker> workers_;
  std::array<std::atomic<std::uint64_t>, kNumEventKinds> consumed_{};
  std::array<std::atomic<std::uint64_t>, kNumEventKinds> sink_errors_{};
  std::array<std::atomic<std::uint64_t>, kNumEventKinds> discarded_{};
  std::atomic<double> volume_mb_{0.0};
  // Carried over from a resumed run.
  std::array<std::uint64_t, kNumEventKinds> base_{};
  double base_volume_mb_ = 0.0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mtd
