// Engine telemetry: lock-free counters and periodic JSON snapshots.
//
// Shard workers and the consumer thread update disjoint sets of atomic
// counters (relaxed ordering; the numbers feed monitoring, not control
// flow). Snapshots aggregate them into a consistent-enough view — exact
// once the engine has drained — and serialize to a flat JSON object that
// benches and the example binary print as one line per snapshot.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "io/json.hpp"

namespace mtd {

/// Point-in-time aggregate of the engine counters.
struct TelemetrySnapshot {
  double wall_seconds = 0.0;           // since run() started
  std::uint64_t clock_minute = 0;      // virtual-clock low-water mark
  std::uint64_t sessions_produced = 0; // entered the rings (cumulative)
  std::uint64_t sessions_consumed = 0; // delivered to the sink (cumulative)
  std::uint64_t minutes_consumed = 0;  // minute callbacks delivered
  double volume_mb = 0.0;              // traffic delivered to the sink
  std::uint64_t queue_depth = 0;       // sum of ring occupancies now
  std::uint64_t dropped_sessions = 0;  // drop backpressure policy only
  std::uint64_t dropped_minutes = 0;
  std::uint64_t sink_errors = 0;          // failed on_session deliveries
  std::uint64_t sink_error_minutes = 0;   // failed on_minute deliveries
  std::uint64_t discarded_sessions = 0;   // drained undelivered on abort
  std::uint64_t discarded_minutes = 0;
  double producer_stall_seconds = 0.0; // blocked-on-full time, all workers
  double sessions_per_second = 0.0;    // consumed / wall
  double mbytes_per_second = 0.0;      // delivered volume / wall

  /// The conservation identity that holds at every drained snapshot, on
  /// success and failure paths alike: every produced session was delivered,
  /// shed by backpressure, rejected by the sink, or discarded on abort.
  [[nodiscard]] bool sessions_accounted_for() const noexcept {
    return sessions_produced == sessions_consumed + dropped_sessions +
                                    sink_errors + discarded_sessions;
  }

  /// Flat JSON object; keys are stable for downstream tooling.
  [[nodiscard]] Json to_json() const;
};

/// Shared counter block. One PerWorker entry per shard keeps producer-side
/// counters uncontended (each worker writes only its own cache line).
class Telemetry {
 public:
  struct alignas(64) PerWorker {
    std::atomic<std::uint64_t> sessions_produced{0};
    std::atomic<std::uint64_t> dropped_sessions{0};
    std::atomic<std::uint64_t> dropped_minutes{0};
    std::atomic<std::uint64_t> stall_ns{0};
    /// Absolute virtual minute this worker has fully produced, +1 (0 = none).
    std::atomic<std::uint64_t> produced_minute{0};
  };

  explicit Telemetry(std::size_t num_workers);

  /// Re-arms the wall clock and seeds cumulative totals (checkpoint resume
  /// continues counting where the interrupted run stopped).
  void start(std::uint64_t prior_sessions, double prior_volume_mb);

  [[nodiscard]] PerWorker& worker(std::size_t i) { return workers_[i]; }
  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }

  // Consumer-side counters (single writer; the CAS loop below never spins
  // in practice, it exists because fetch_add on atomic<double> is C++20
  // library support we cannot rely on everywhere).
  void count_session(double volume_mb) noexcept {
    sessions_consumed_.fetch_add(1, std::memory_order_relaxed);
    double cur = volume_mb_.load(std::memory_order_relaxed);
    while (!volume_mb_.compare_exchange_weak(cur, cur + volume_mb,
                                             std::memory_order_relaxed)) {
    }
  }
  void count_minute() noexcept {
    minutes_consumed_.fetch_add(1, std::memory_order_relaxed);
  }
  /// A sink delivery failed under SinkErrorPolicy::kDegrade.
  void count_sink_error(bool minute) noexcept {
    (minute ? sink_error_minutes_ : sink_errors_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  /// An event was drained without delivery while aborting.
  void count_discarded_session() noexcept {
    discarded_sessions_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_discarded_minute() noexcept {
    discarded_minutes_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Aggregates all counters. `queue_depth` is supplied by the engine (it
  /// owns the rings).
  [[nodiscard]] TelemetrySnapshot snapshot(std::uint64_t queue_depth) const;

 private:
  std::vector<PerWorker> workers_;
  std::atomic<std::uint64_t> sessions_consumed_{0};
  std::atomic<std::uint64_t> minutes_consumed_{0};
  std::atomic<std::uint64_t> sink_errors_{0};
  std::atomic<std::uint64_t> sink_error_minutes_{0};
  std::atomic<std::uint64_t> discarded_sessions_{0};
  std::atomic<std::uint64_t> discarded_minutes_{0};
  std::atomic<double> volume_mb_{0.0};
  std::uint64_t base_sessions_ = 0;  // carried over from a resumed run
  double base_volume_mb_ = 0.0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mtd
