#include "engine/telemetry.hpp"

#include <algorithm>

namespace mtd {

Telemetry::Telemetry(std::size_t num_workers)
    : workers_(num_workers), start_(std::chrono::steady_clock::now()) {}

void Telemetry::start(std::uint64_t prior_sessions, double prior_volume_mb) {
  base_sessions_ = prior_sessions;
  base_volume_mb_ = prior_volume_mb;
  start_ = std::chrono::steady_clock::now();
}

TelemetrySnapshot Telemetry::snapshot(std::uint64_t queue_depth) const {
  TelemetrySnapshot snap;
  snap.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  snap.queue_depth = queue_depth;

  std::uint64_t produced = 0;
  std::uint64_t stall_ns = 0;
  std::uint64_t min_minute = ~std::uint64_t{0};
  for (const PerWorker& w : workers_) {
    produced += w.sessions_produced.load(std::memory_order_relaxed);
    snap.dropped_sessions +=
        w.dropped_sessions.load(std::memory_order_relaxed);
    snap.dropped_minutes += w.dropped_minutes.load(std::memory_order_relaxed);
    stall_ns += w.stall_ns.load(std::memory_order_relaxed);
    min_minute = std::min(
        min_minute, w.produced_minute.load(std::memory_order_relaxed));
  }
  snap.clock_minute = workers_.empty() || min_minute == ~std::uint64_t{0}
                          ? 0
                          : min_minute;
  snap.sessions_produced = base_sessions_ + produced;
  snap.sessions_consumed =
      base_sessions_ + sessions_consumed_.load(std::memory_order_relaxed);
  snap.minutes_consumed = minutes_consumed_.load(std::memory_order_relaxed);
  snap.sink_errors = sink_errors_.load(std::memory_order_relaxed);
  snap.sink_error_minutes =
      sink_error_minutes_.load(std::memory_order_relaxed);
  snap.discarded_sessions =
      discarded_sessions_.load(std::memory_order_relaxed);
  snap.discarded_minutes = discarded_minutes_.load(std::memory_order_relaxed);
  snap.volume_mb =
      base_volume_mb_ + volume_mb_.load(std::memory_order_relaxed);
  snap.producer_stall_seconds = static_cast<double>(stall_ns) * 1e-9;
  if (snap.wall_seconds > 0.0) {
    snap.sessions_per_second =
        static_cast<double>(snap.sessions_consumed - base_sessions_) /
        snap.wall_seconds;
    snap.mbytes_per_second =
        (snap.volume_mb - base_volume_mb_) / snap.wall_seconds;
  }
  return snap;
}

Json TelemetrySnapshot::to_json() const {
  JsonObject obj;
  obj.emplace("wall_s", wall_seconds);
  obj.emplace("clock_minute", static_cast<double>(clock_minute));
  obj.emplace("sessions_produced", static_cast<double>(sessions_produced));
  obj.emplace("sessions_consumed", static_cast<double>(sessions_consumed));
  obj.emplace("minutes_consumed", static_cast<double>(minutes_consumed));
  obj.emplace("volume_mb", volume_mb);
  obj.emplace("queue_depth", static_cast<double>(queue_depth));
  obj.emplace("dropped_sessions", static_cast<double>(dropped_sessions));
  obj.emplace("dropped_minutes", static_cast<double>(dropped_minutes));
  obj.emplace("sink_errors", static_cast<double>(sink_errors));
  obj.emplace("sink_error_minutes", static_cast<double>(sink_error_minutes));
  obj.emplace("discarded_sessions", static_cast<double>(discarded_sessions));
  obj.emplace("discarded_minutes", static_cast<double>(discarded_minutes));
  obj.emplace("producer_stall_s", producer_stall_seconds);
  obj.emplace("sessions_per_s", sessions_per_second);
  obj.emplace("mbytes_per_s", mbytes_per_second);
  return Json(std::move(obj));
}

}  // namespace mtd
