#include "engine/telemetry.hpp"

#include <algorithm>

namespace mtd {

Telemetry::Telemetry(std::size_t num_workers)
    : workers_(num_workers), start_(std::chrono::steady_clock::now()) {}

void Telemetry::start(
    const std::array<std::uint64_t, kNumEventKinds>& prior,
    double prior_volume_mb) {
  base_ = prior;
  base_volume_mb_ = prior_volume_mb;
  start_ = std::chrono::steady_clock::now();
}

TelemetrySnapshot Telemetry::snapshot(std::uint64_t queue_depth) const {
  TelemetrySnapshot snap;
  snap.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  snap.queue_depth = queue_depth;

  std::uint64_t stall_ns = 0;
  std::uint64_t min_minute = ~std::uint64_t{0};
  for (const PerWorker& w : workers_) {
    for (std::size_t k = 0; k < kNumEventKinds; ++k) {
      snap.kinds[k].produced += w.produced[k].load(std::memory_order_relaxed);
      snap.kinds[k].dropped += w.dropped[k].load(std::memory_order_relaxed);
    }
    stall_ns += w.stall_ns.load(std::memory_order_relaxed);
    min_minute = std::min(
        min_minute, w.produced_minute.load(std::memory_order_relaxed));
  }
  snap.clock_minute = workers_.empty() || min_minute == ~std::uint64_t{0}
                          ? 0
                          : min_minute;
  std::uint64_t consumed_this_run = 0;
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    const std::uint64_t consumed =
        consumed_[k].load(std::memory_order_relaxed);
    consumed_this_run += consumed;
    snap.kinds[k].produced += base_[k];
    snap.kinds[k].consumed = base_[k] + consumed;
    snap.kinds[k].sink_errors =
        sink_errors_[k].load(std::memory_order_relaxed);
    snap.kinds[k].discarded = discarded_[k].load(std::memory_order_relaxed);
  }
  snap.volume_mb =
      base_volume_mb_ + volume_mb_.load(std::memory_order_relaxed);
  snap.producer_stall_seconds = static_cast<double>(stall_ns) * 1e-9;
  snap.sync_legacy_fields();
  if (snap.wall_seconds > 0.0) {
    const std::size_t session = static_cast<std::size_t>(EventKind::kSession);
    snap.sessions_per_second =
        static_cast<double>(consumed_[session].load(
            std::memory_order_relaxed)) /
        snap.wall_seconds;
    snap.events_per_second =
        static_cast<double>(consumed_this_run) / snap.wall_seconds;
    snap.mbytes_per_second =
        (snap.volume_mb - base_volume_mb_) / snap.wall_seconds;
  }
  return snap;
}

void TelemetrySnapshot::sync_legacy_fields() noexcept {
  const EventKindCounters& minute = of(EventKind::kMinute);
  const EventKindCounters& session = of(EventKind::kSession);
  sessions_produced = session.produced;
  sessions_consumed = session.consumed;
  minutes_consumed = minute.consumed;
  dropped_sessions = session.dropped;
  dropped_minutes = minute.dropped;
  sink_errors = session.sink_errors;
  sink_error_minutes = minute.sink_errors;
  discarded_sessions = session.discarded;
  discarded_minutes = minute.discarded;
}

Json TelemetrySnapshot::to_json() const {
  JsonObject obj;
  obj.emplace("wall_s", wall_seconds);
  obj.emplace("clock_minute", static_cast<double>(clock_minute));
  obj.emplace("sessions_produced", static_cast<double>(sessions_produced));
  obj.emplace("sessions_consumed", static_cast<double>(sessions_consumed));
  obj.emplace("minutes_consumed", static_cast<double>(minutes_consumed));
  obj.emplace("volume_mb", volume_mb);
  obj.emplace("queue_depth", static_cast<double>(queue_depth));
  obj.emplace("dropped_sessions", static_cast<double>(dropped_sessions));
  obj.emplace("dropped_minutes", static_cast<double>(dropped_minutes));
  obj.emplace("sink_errors", static_cast<double>(sink_errors));
  obj.emplace("sink_error_minutes", static_cast<double>(sink_error_minutes));
  obj.emplace("discarded_sessions", static_cast<double>(discarded_sessions));
  obj.emplace("discarded_minutes", static_cast<double>(discarded_minutes));
  obj.emplace("producer_stall_s", producer_stall_seconds);
  obj.emplace("sessions_per_s", sessions_per_second);
  obj.emplace("events_per_s", events_per_second);
  obj.emplace("mbytes_per_s", mbytes_per_second);
  JsonObject kinds_obj;
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    const EventKindCounters& c = kinds[k];
    JsonObject kind_obj;
    kind_obj.emplace("produced", static_cast<double>(c.produced));
    kind_obj.emplace("consumed", static_cast<double>(c.consumed));
    kind_obj.emplace("dropped", static_cast<double>(c.dropped));
    kind_obj.emplace("sink_errors", static_cast<double>(c.sink_errors));
    kind_obj.emplace("discarded", static_cast<double>(c.discarded));
    kinds_obj.emplace(to_string(static_cast<EventKind>(k)),
                      Json(std::move(kind_obj)));
  }
  obj.emplace("kinds", Json(std::move(kinds_obj)));
  return Json(std::move(obj));
}

TelemetrySnapshot TelemetrySnapshot::from_json(const Json& json) {
  TelemetrySnapshot snap;
  auto u64 = [&](const Json& node, const char* key) {
    return static_cast<std::uint64_t>(node.at(key).as_number());
  };
  snap.wall_seconds = json.at("wall_s").as_number();
  snap.clock_minute = u64(json, "clock_minute");
  snap.volume_mb = json.at("volume_mb").as_number();
  snap.queue_depth = u64(json, "queue_depth");
  snap.producer_stall_seconds = json.at("producer_stall_s").as_number();
  snap.sessions_per_second = json.at("sessions_per_s").as_number();
  snap.events_per_second = json.at("events_per_s").as_number();
  snap.mbytes_per_second = json.at("mbytes_per_s").as_number();
  const Json& kinds_obj = json.at("kinds");
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    const Json& kind_obj =
        kinds_obj.at(to_string(static_cast<EventKind>(k)));
    snap.kinds[k].produced = u64(kind_obj, "produced");
    snap.kinds[k].consumed = u64(kind_obj, "consumed");
    snap.kinds[k].dropped = u64(kind_obj, "dropped");
    snap.kinds[k].sink_errors = u64(kind_obj, "sink_errors");
    snap.kinds[k].discarded = u64(kind_obj, "discarded");
  }
  snap.sync_legacy_fields();
  return snap;
}

}  // namespace mtd
