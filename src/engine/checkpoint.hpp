// Engine checkpoints: suspend a streaming replay at a day boundary and
// resume it bit-identically later.
//
// The per-(BS, day) generation streams re-seed from (trace seed, BS id,
// day) at every day boundary (see TraceGenerator::bs_day_rng), so a
// day-boundary checkpoint needs no raw RNG dumps: the RNG-stream state of
// every shard is fully described by the trace seed plus the next day to
// generate, making checkpoints O(1) in network size. The file still records
// the full replay identity (seed, horizon, rate scaling, a fingerprint of
// the network topology) so a resume against a different scenario is
// rejected instead of silently diverging, plus cumulative per-shard and
// global counters so telemetry continues instead of restarting from zero.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/network.hpp"
#include "io/json.hpp"

namespace mtd {

class FaultInjector;

/// Progress of one shard worker at a checkpoint.
struct EngineShardCursor {
  std::size_t shard = 0;
  /// First day this shard has not yet produced; at a day-boundary
  /// checkpoint every shard agrees on it (the engine enforces this), and
  /// together with the trace seed it pins the shard's RNG streams.
  std::size_t next_day = 0;
  std::uint64_t sessions_produced = 0;
};

/// Serializable engine state taken at a day boundary.
struct EngineCheckpoint {
  // Replay identity — must match on resume.
  std::uint64_t seed = 0;
  std::size_t num_days = 0;
  double rate_scale = 1.0;
  double weekend_rate_factor = 0.85;
  std::uint64_t network_fingerprint = 0;

  // Cursor.
  std::size_t next_day = 0;       ///< first day not yet streamed
  std::uint64_t clock_minute = 0; ///< virtual clock, == next_day * 1440

  // Cumulative per-kind totals, for telemetry continuity across resumes.
  // "Emitted" counts events produced into the rings (including any the
  // backpressure policy later dropped); segment/packet counters are zero
  // unless the engine's event_kinds mask enables those expansions.
  std::uint64_t sessions_emitted = 0;
  std::uint64_t minutes_emitted = 0;
  std::uint64_t segments_emitted = 0;
  std::uint64_t packets_emitted = 0;
  double volume_mb = 0.0;

  std::vector<EngineShardCursor> shards;

  /// True when the whole trace horizon has been streamed.
  [[nodiscard]] bool complete() const noexcept { return next_day >= num_days; }

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static EngineCheckpoint from_json(const Json& json);

  /// Crash-safe write: serializes to `<path>.tmp`, flushes, then atomically
  /// renames over `path`, so a kill mid-write never leaves a torn file —
  /// the previous checkpoint survives any failed save. Throws IoError.
  /// `fault` (tests only) arms the "checkpoint.write" failure point.
  void save(const std::string& path, FaultInjector* fault = nullptr) const;

  /// Loads and validates a checkpoint file. Truncated or corrupt content
  /// raises ParseError naming the file, its size, and the parser's byte
  /// offset — never a raw JSON error with no provenance.
  [[nodiscard]] static EngineCheckpoint load(const std::string& path);
};

/// Order- and content-sensitive FNV-1a digest of the network topology
/// (per-BS rates, deciles, regions, cities, RATs). Two networks with the
/// same fingerprint stream the same trace for the same seed.
[[nodiscard]] std::uint64_t network_fingerprint(const Network& network);

}  // namespace mtd
