// Engine → trace store wiring: stream a replay into a TraceStoreWriter
// with store commits aligned to the engine's checkpoints (day-boundary
// and, when checkpoint_interval_minutes is set, mid-day minute marks).
//
// The engine's on_checkpoint callback fires on the consumer thread before
// the checkpoint file is persisted — exactly the point where buffered
// downstream output must become durable. These runners interpose a
// MinuteCommitBuffer so the store never holds events past the checkpoint
// (fast workers deliver ahead of the checkpoint cut; persisting that tail
// would make a crash + resume ingest it twice), then commit the buffered
// prefix, the day cursor, AND the full checkpoint JSON into the manifest
// in one atomic manifest replace. After a crash the store alone carries
// everything a resume needs — data, cursor and checkpoint can never
// drift apart, because they publish together or not at all.
#pragma once

#include <optional>

#include "engine/engine.hpp"
#include "store/trace_store.hpp"

namespace mtd {

/// Background maintenance policy of the store runners.
struct StoreRunPolicy {
  /// Compact the store after every N newly committed days (0 = never).
  /// Long runs commit one segment per checkpoint; periodic compaction
  /// folds them into one so scans descend a single fence tree instead of
  /// merging dozens. Compaction runs between checkpoints on the committed
  /// snapshot — a crash mid-compact costs nothing (the previous manifest
  /// stays live) and resume semantics are unchanged.
  std::size_t compact_every_days = 0;
};

/// Runs `engine` from day 0 into `writer`, committing one store segment
/// per checkpoint (plus a final commit). The writer is left open; the
/// caller closes it. Returns the engine result as StreamEngine::run does.
[[nodiscard]] EngineResult run_engine_into_store(
    StreamEngine& engine, store::TraceStoreWriter& writer,
    const StoreRunPolicy& policy = {});

/// Resumes `engine` from `from` into `writer`, with the same per-
/// checkpoint commit wiring. Throws InvalidArgument when the store's
/// recorded engine cursor (day, and minute when the manifest carries a
/// checkpoint) does not match `from` — a mismatched pair would duplicate
/// or skip events in the store.
[[nodiscard]] EngineResult resume_engine_into_store(
    StreamEngine& engine, const EngineCheckpoint& from,
    store::TraceStoreWriter& writer, const StoreRunPolicy& policy = {});

/// Extracts the engine checkpoint a store-runner commit embedded in the
/// manifest (std::nullopt when the store has never been committed through
/// these runners). ParseError when the blob is present but corrupt.
[[nodiscard]] std::optional<EngineCheckpoint> load_store_checkpoint(
    const store::StoreManifest& manifest);

}  // namespace mtd
