// Engine → trace store wiring: stream a replay into a TraceStoreWriter
// with store commits aligned to the engine's day-boundary checkpoints.
//
// The engine's on_checkpoint callback fires on the consumer thread once
// per completed day, before the checkpoint file is persisted — exactly the
// point where buffered downstream output must become durable. These
// runners hook that callback to record the checkpoint's day cursor in the
// store manifest and commit the buffered events, so after a crash the
// store's committed state and its recorded engine cursor always describe
// the same day boundary: resuming the engine from that cursor regenerates
// precisely the days the store is missing, never duplicating or skipping
// one.
#pragma once

#include "engine/engine.hpp"
#include "store/trace_store.hpp"

namespace mtd {

/// Runs `engine` from day 0 into `writer`, committing one store segment
/// per completed day (plus a final commit). The writer is left open; the
/// caller closes it. Returns the engine result as StreamEngine::run does.
[[nodiscard]] EngineResult run_engine_into_store(
    StreamEngine& engine, store::TraceStoreWriter& writer);

/// Resumes `engine` from `from` into `writer`, with the same per-day
/// commit wiring. Throws InvalidArgument when the store's recorded engine
/// cursor does not match the checkpoint's next_day — a mismatched pair
/// would duplicate or skip days in the store.
[[nodiscard]] EngineResult resume_engine_into_store(
    StreamEngine& engine, const EngineCheckpoint& from,
    store::TraceStoreWriter& writer);

}  // namespace mtd
