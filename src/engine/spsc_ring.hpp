// Bounded lock-free single-producer / single-consumer ring buffer.
//
// The streaming replay engine runs one producer (shard worker) and one
// consumer (sink thread) per ring, which is exactly the SPSC setting: a
// Lamport queue with C++11 atomics needs no locks and no CAS. Head and tail
// live on separate cache lines, and each side keeps a cached copy of the
// opposite index so the fast path touches only its own line (the classic
// "cached index" optimization; coherence traffic only on apparent
// full/empty).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace mtd {

/// Rounds up to the next power of two (minimum 2).
[[nodiscard]] constexpr std::size_t ceil_pow2(std::size_t n) noexcept {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two. Indices are monotonically
  /// increasing 64-bit counters (masked on access), so every slot is usable
  /// and full (tail - head == capacity) is unambiguous from empty.
  explicit SpscRing(std::size_t capacity)
      : mask_(ceil_pow2(capacity) - 1), slots_(mask_ + 1) {
    require(capacity >= 2, "SpscRing: capacity must be at least 2");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full.
  bool try_push(T&& value) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy; exact only when both sides are quiescent.
  /// Callable from any thread (telemetry).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  static constexpr std::size_t kCacheLine = 64;

  std::size_t mask_;
  std::vector<T> slots_;

  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};  // next pop
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};  // next push
  // Producer-local cache of head_ / consumer-local cache of tail_.
  alignas(kCacheLine) std::uint64_t cached_head_{0};
  alignas(kCacheLine) std::uint64_t cached_tail_{0};
};

}  // namespace mtd
