// Sharded streaming replay engine.
//
// Turns the batch trace generator into an online runtime: the network's
// base stations are sharded across N worker threads, each advancing a
// minute-tick virtual clock and producing typed StreamEvents (minute
// counts, sessions, and — when enabled — handover segments and packet
// schedules expanding each session) into its own bounded SPSC ring; a
// single consumer thread drains the rings into one EventSink. Events move
// through the rings in batches of EngineConfig::batch_size to amortize the
// atomic head/tail traffic. Because every (BS, day) has an independent RNG
// stream (see TraceGenerator::bs_day_rng; segment/packet expansion draws
// from separately salted per-(BS, day) streams), the per-BS event sequence
// delivered to the sink is bit-identical to the batch path for any worker
// count and any batch size — sharding and batching change only the
// interleaving across BSs, never the content.
//
// Two pacing modes: a scaled virtual clock (time_scale simulated seconds
// per wall second) for live replay, or max-throughput (time_scale <= 0).
// When the consumer falls behind, the configured backpressure policy either
// blocks the producers (lossless; stall time is metered) or drops events
// (per-kind drop counters in telemetry). Day boundaries act as global
// barriers at which the engine records a checkpoint (engine/checkpoint.hpp)
// from which a later run resumes bit-identically.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "dataset/generator.hpp"
#include "dataset/network.hpp"
#include "engine/checkpoint.hpp"
#include "engine/telemetry.hpp"
#include "events/event_sink.hpp"
#include "events/stream_event.hpp"
#include "mobility/handover.hpp"
#include "packet/packet_schedule.hpp"

namespace mtd {

class FaultInjector;

/// What producers do when their ring is full.
enum class BackpressurePolicy : std::uint8_t {
  kBlock,      ///< wait for the consumer; lossless, stall time metered
  kDropNewest, ///< drop the batch being pushed; counted in telemetry
};

[[nodiscard]] const char* to_string(BackpressurePolicy p) noexcept;

struct EngineConfig {
  /// Worker (producer) threads; clamped to the number of BSs.
  std::size_t num_workers = 2;
  /// Slots per worker ring (rounded up to a power of two). Each slot holds
  /// one EventBatch, so the buffered-event bound is queue_capacity *
  /// batch_size per worker.
  std::size_t queue_capacity = 8192;
  /// Events per ring transfer (>= 1). Larger batches amortize the atomic
  /// ring traffic; under kDropNewest a full ring drops a whole batch.
  std::size_t batch_size = 64;
  /// Which generation kernel the workers drive (dataset/generator.hpp).
  /// kScalar reproduces the pre-batch per-(BS, day) streams bit-exactly;
  /// kBatch fills SoA minute blocks (BlockRng v1 stream — statistically
  /// identical, bit-wise different, 1.5x+ the sessions/s). Segment and
  /// packet expansion streams are scalar under both kernels, and both
  /// kernels are invariant to worker count and batch size. Checkpoints
  /// resume bit-identically under the kernel that produced them; a
  /// checkpoint taken under one kernel resumes under the other only at
  /// day boundaries (mid-day v2 cursors splice session streams).
  GeneratorKernel kernel = GeneratorKernel::kScalar;
  /// Which event kinds the workers produce. Minute and session events
  /// reproduce the pre-refactor session replay; adding kSegment expands
  /// every session into its handover chain (config `mobility`), adding
  /// kPacket into its packet schedule (config `packet`). Expansion draws
  /// from separately salted per-(BS, day) RNG streams, so enabling it
  /// never perturbs the session content.
  EventKindMask event_kinds = EventKindMask::session_replay();
  MobilityConfig mobility;
  PacketScheduleConfig packet;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Simulated seconds per wall-clock second; <= 0 streams at maximum
  /// throughput. 60 replays one simulated minute per real second; 86400
  /// replays a whole day in one second (clock granularity is one minute).
  double time_scale = 0.0;
  /// Wall seconds between telemetry snapshots handed to the snapshot
  /// callback; 0 disables periodic snapshots (the final one is always
  /// produced).
  double telemetry_period_s = 0.0;
  /// Stop after this many days of this run (0 = run to the trace horizon).
  /// The engine returns a resumable checkpoint either way.
  std::size_t stop_after_days = 0;
  /// When non-empty, the latest checkpoint JSON is (re)written here at
  /// every completed day boundary (crash-safe: tmp file + atomic rename).
  std::string checkpoint_path;
  /// When > 0, the engine additionally checkpoints every time the replay
  /// clock crosses a multiple of this many minutes (absolute simulated
  /// minutes, so the mark grid is stable across stop/resume splits).
  /// Mid-day marks produce v2 checkpoints carrying raw per-BS RNG state
  /// (see EngineBsCursor); marks landing exactly on a day boundary defer
  /// to the regular day-boundary checkpoint. 0 checkpoints at day
  /// boundaries only.
  std::size_t checkpoint_interval_minutes = 0;
  /// How a throwing sink is handled (see SinkErrorPolicy). Under kDegrade
  /// the per-kind accounting identity produced == consumed + dropped +
  /// sink_errors still holds exactly; failed deliveries are never silently
  /// lost.
  SinkErrorPolicy sink_error_policy = SinkErrorPolicy::kFailFast;
  /// When > 0, a watchdog thread aborts the run with a retryable
  /// EngineError if no counter makes progress for this many wall seconds
  /// (stalled consumer, wedged worker). 0 disables the watchdog. Pick a
  /// deadline well above one virtual-minute interval when pacing with
  /// time_scale, or the idle wait between minutes will trip it.
  double watchdog_timeout_s = 0.0;
  /// Checkpoint writes are retried with exponential backoff on retryable
  /// I/O errors: total attempts (>= 1) and initial backoff. The backoff
  /// jitter is drawn from a trace-seeded RNG, so runs stay reproducible.
  std::size_t checkpoint_max_attempts = 3;
  double checkpoint_backoff_ms = 10.0;
  /// Optional failure-injection registry (non-owning; tests). Null in
  /// production: every fault point is then a single branch.
  FaultInjector* fault = nullptr;
};

/// Outcome of a (partial) engine run.
struct EngineResult {
  EngineCheckpoint checkpoint;
  TelemetrySnapshot telemetry;
};

class StreamEngine {
 public:
  StreamEngine(const Network& network, const TraceConfig& trace,
               EngineConfig config = {});

  /// Streams days [0, horizon) — or fewer under stop_after_days — into
  /// `sink`. All sink callbacks happen on one consumer thread. Blocking
  /// call; returns once producers and consumer have drained.
  [[nodiscard]] EngineResult run(EventSink& sink);

  /// Legacy entry point: wraps `sink` in a TraceSinkAdapter (minute and
  /// session events only; segment/packet events are dropped by the
  /// adapter, so pair it with a session_replay() event mask).
  [[nodiscard]] EngineResult run(TraceSink& sink);

  /// Continues a run from a checkpoint — a day boundary, or any mid-day
  /// minute for v2 checkpoints carrying per-BS stream state. Throws
  /// InvalidArgument when the checkpoint does not match this engine's
  /// network/trace configuration. The worker count may differ from the
  /// run that produced the checkpoint — per-BS streams do not depend on
  /// the sharding.
  [[nodiscard]] EngineResult resume(const EngineCheckpoint& from,
                                    EventSink& sink);
  [[nodiscard]] EngineResult resume(const EngineCheckpoint& from,
                                    TraceSink& sink);

  /// Called with every periodic telemetry snapshot (consumer thread). The
  /// final snapshot is always delivered — also on the failure path, as the
  /// last diagnostic before the error propagates.
  void on_snapshot(std::function<void(const TelemetrySnapshot&)> callback) {
    snapshot_callback_ = std::move(callback);
  }

  /// Called (consumer thread) every time a checkpoint — day-boundary or
  /// minute-interval — is recorded, before it is persisted to
  /// checkpoint_path. The Supervisor uses this to commit buffered output
  /// downstream exactly once; an exception from the callback aborts the
  /// run like a sink failure.
  void on_checkpoint(std::function<void(const EngineCheckpoint&)> callback) {
    checkpoint_callback_ = std::move(callback);
  }

  [[nodiscard]] const Network& network() const noexcept {
    return generator_.network();
  }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

 private:
  /// `first_minute` is the minute of day `first_day` to start at; when
  /// non-zero, `resume_states` must hold one EngineBsCursor per BS
  /// (indexed by network index) to restore the mid-day streams from.
  [[nodiscard]] EngineResult run_days(
      EventSink& sink, std::size_t first_day, std::size_t first_minute,
      const std::vector<EngineBsCursor>* resume_states,
      const std::array<std::uint64_t, kNumEventKinds>& prior,
      double prior_volume);

  TraceGenerator generator_;
  EngineConfig config_;
  std::uint64_t fingerprint_;
  std::function<void(const TelemetrySnapshot&)> snapshot_callback_;
  std::function<void(const EngineCheckpoint&)> checkpoint_callback_;
};

}  // namespace mtd
