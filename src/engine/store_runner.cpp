#include "engine/store_runner.hpp"

#include <string>

#include "common/error.hpp"

namespace mtd {

namespace {

EngineResult run_into_store(StreamEngine& engine,
                            store::TraceStoreWriter& writer,
                            const EngineCheckpoint* from) {
  engine.on_checkpoint([&writer](const EngineCheckpoint& checkpoint) {
    writer.set_engine_cursor(checkpoint.next_day);
    writer.commit();
  });
  EngineResult result =
      from != nullptr ? engine.resume(*from, writer) : engine.run(writer);
  // A zero-day run fires no checkpoint callback; publish the final cursor
  // either way (a no-op commit when the last day boundary already did).
  writer.set_engine_cursor(result.checkpoint.next_day);
  writer.commit();
  return result;
}

}  // namespace

EngineResult run_engine_into_store(StreamEngine& engine,
                                   store::TraceStoreWriter& writer) {
  const std::int64_t cursor = writer.manifest().engine_next_day;
  if (cursor > 0) {
    throw InvalidArgument(
        "run_engine_into_store: store already holds days up to " +
        std::to_string(cursor) + "; use resume_engine_into_store");
  }
  return run_into_store(engine, writer, nullptr);
}

EngineResult resume_engine_into_store(StreamEngine& engine,
                                      const EngineCheckpoint& from,
                                      store::TraceStoreWriter& writer) {
  const std::int64_t cursor = writer.manifest().engine_next_day;
  if (cursor < 0 ||
      static_cast<std::size_t>(cursor) != from.next_day) {
    throw InvalidArgument(
        "resume_engine_into_store: store cursor is at day " +
        std::to_string(cursor) + " but the checkpoint resumes from day " +
        std::to_string(from.next_day) +
        " — the store would duplicate or skip days");
  }
  return run_into_store(engine, writer, &from);
}

}  // namespace mtd
