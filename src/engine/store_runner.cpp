#include "engine/store_runner.hpp"

#include <string>

#include "common/error.hpp"
#include "events/commit_buffer.hpp"

namespace mtd {

namespace {

EngineResult run_into_store(StreamEngine& engine,
                            store::TraceStoreWriter& writer,
                            const EngineCheckpoint* from,
                            const StoreRunPolicy& policy) {
  // Exactly-once across crashes: the writer must never persist events the
  // checkpoint does not cover, so the stream is held back per minute and
  // released only when a checkpoint commits that minute.
  MinuteCommitBuffer buffer(writer);
  // Day the last compaction pass covered: compaction triggers once
  // compact_every_days NEW days landed since (resumes start counting from
  // the store's cursor, not from zero).
  std::int64_t compacted_through =
      std::max<std::int64_t>(writer.manifest().engine_next_day, 0);
  const auto maybe_compact = [&writer, &policy,
                              &compacted_through](std::size_t next_day) {
    if (policy.compact_every_days == 0) return;
    if (static_cast<std::int64_t>(next_day) - compacted_through <
        static_cast<std::int64_t>(policy.compact_every_days)) {
      return;
    }
    if (writer.manifest().segments.size() > 1) (void)writer.compact();
    compacted_through = static_cast<std::int64_t>(next_day);
  };
  engine.on_checkpoint([&buffer, &writer,
                        &maybe_compact](const EngineCheckpoint& checkpoint) {
    buffer.commit_through(checkpoint.clock_minute);
    writer.set_engine_cursor(checkpoint.next_day);
    writer.set_engine_checkpoint(checkpoint.to_json().dump(2));
    writer.commit();
    maybe_compact(checkpoint.next_day);
  });
  EngineResult result =
      from != nullptr ? engine.resume(*from, buffer) : engine.run(buffer);
  // A zero-day run fires no checkpoint callback; publish the final cursor
  // and checkpoint either way (a no-op commit when the last checkpoint
  // already did). A successful run always ends on a day-boundary
  // checkpoint, so commit_through releases every buffered event here.
  buffer.commit_through(result.checkpoint.clock_minute);
  writer.set_engine_cursor(result.checkpoint.next_day);
  writer.set_engine_checkpoint(result.checkpoint.to_json().dump(2));
  writer.commit();
  maybe_compact(result.checkpoint.next_day);
  return result;
}

}  // namespace

EngineResult run_engine_into_store(StreamEngine& engine,
                                   store::TraceStoreWriter& writer,
                                   const StoreRunPolicy& policy) {
  const std::int64_t cursor = writer.manifest().engine_next_day;
  if (cursor > 0 || !writer.manifest().engine_checkpoint.empty()) {
    throw InvalidArgument(
        "run_engine_into_store: store already holds days up to " +
        std::to_string(cursor) + "; use resume_engine_into_store");
  }
  return run_into_store(engine, writer, nullptr, policy);
}

EngineResult resume_engine_into_store(StreamEngine& engine,
                                      const EngineCheckpoint& from,
                                      store::TraceStoreWriter& writer,
                                      const StoreRunPolicy& policy) {
  const std::int64_t cursor = writer.manifest().engine_next_day;
  if (cursor < 0 ||
      static_cast<std::size_t>(cursor) != from.next_day) {
    throw InvalidArgument(
        "resume_engine_into_store: store cursor is at day " +
        std::to_string(cursor) + " but the checkpoint resumes from day " +
        std::to_string(from.next_day) +
        " — the store would duplicate or skip days");
  }
  if (const std::optional<EngineCheckpoint> stored =
          load_store_checkpoint(writer.manifest());
      stored && stored->clock_minute != from.clock_minute) {
    throw InvalidArgument(
        "resume_engine_into_store: store committed through minute " +
        std::to_string(stored->clock_minute) +
        " but the checkpoint resumes from minute " +
        std::to_string(from.clock_minute) +
        " — the store would duplicate or skip events");
  }
  return run_into_store(engine, writer, &from, policy);
}

std::optional<EngineCheckpoint> load_store_checkpoint(
    const store::StoreManifest& manifest) {
  if (manifest.engine_checkpoint.empty()) return std::nullopt;
  return EngineCheckpoint::from_json(Json::parse(manifest.engine_checkpoint));
}

}  // namespace mtd
