// JSON (de)serialization of the library configuration structs.
//
// Scenario files let experiments be described declaratively (and shipped
// alongside results for reproducibility). Every to_json/from_json pair
// round-trips exactly; from_json accepts partial objects, keeping defaults
// for absent keys, and rejects unknown keys to catch typos early.
#pragma once

#include "core/traffic_generator.hpp"
#include "engine/engine.hpp"
#include "io/json.hpp"
#include "mobility/handover.hpp"
#include "packet/packet_schedule.hpp"
#include "usecases/slicing.hpp"
#include "usecases/vran.hpp"

namespace mtd {

[[nodiscard]] Json to_json(const NetworkConfig& config);
[[nodiscard]] Json to_json(const TraceConfig& config);
[[nodiscard]] Json to_json(const SlicingConfig& config);
[[nodiscard]] Json to_json(const VranConfig& config);
[[nodiscard]] Json to_json(const MobilityConfig& config);
[[nodiscard]] Json to_json(const PacketScheduleConfig& config);
[[nodiscard]] Json to_json(const EngineConfig& config);

void from_json(const Json& json, NetworkConfig& config);
void from_json(const Json& json, TraceConfig& config);
void from_json(const Json& json, SlicingConfig& config);
void from_json(const Json& json, VranConfig& config);
void from_json(const Json& json, MobilityConfig& config);
void from_json(const Json& json, PacketScheduleConfig& config);
void from_json(const Json& json, EngineConfig& config);

/// A complete experiment description: the measurement campaign plus the
/// two use-case scenarios and the streaming-replay engine setup.
struct Scenario {
  NetworkConfig network;
  TraceConfig trace;
  SlicingConfig slicing;
  VranConfig vran;
  EngineConfig engine;

  [[nodiscard]] Json to_json() const;
  static Scenario from_json(const Json& json);
  static Scenario load(const std::string& path);
  void save(const std::string& path) const;
};

}  // namespace mtd
