#include "scenario/scenario.hpp"

#include <set>

#include "common/error.hpp"

namespace mtd {

namespace {

/// Rejects keys not in `allowed` (typo protection for scenario files).
void check_keys(const Json& json, const std::set<std::string>& allowed,
                const char* what) {
  for (const auto& [key, value] : json.as_object()) {
    if (!allowed.contains(key)) {
      throw ParseError(std::string(what) + ": unknown key '" + key + "'");
    }
  }
}

double num_or(const Json& json, const char* key, double fallback) {
  return json.contains(key) ? json.at(key).as_number() : fallback;
}

}  // namespace

Json to_json(const NetworkConfig& config) {
  JsonObject obj;
  obj.emplace("num_bs", config.num_bs);
  obj.emplace("fraction_5g", config.fraction_5g);
  obj.emplace("first_decile_rate", config.first_decile_rate);
  obj.emplace("last_decile_rate", config.last_decile_rate);
  obj.emplace("offpeak_scale_ratio", config.offpeak_scale_ratio);
  obj.emplace("rate_jitter", config.rate_jitter);
  return Json(std::move(obj));
}

void from_json(const Json& json, NetworkConfig& config) {
  check_keys(json,
             {"num_bs", "fraction_5g", "first_decile_rate",
              "last_decile_rate", "offpeak_scale_ratio", "rate_jitter"},
             "NetworkConfig");
  config.num_bs = static_cast<std::size_t>(
      num_or(json, "num_bs", static_cast<double>(config.num_bs)));
  config.fraction_5g = num_or(json, "fraction_5g", config.fraction_5g);
  config.first_decile_rate =
      num_or(json, "first_decile_rate", config.first_decile_rate);
  config.last_decile_rate =
      num_or(json, "last_decile_rate", config.last_decile_rate);
  config.offpeak_scale_ratio =
      num_or(json, "offpeak_scale_ratio", config.offpeak_scale_ratio);
  config.rate_jitter = num_or(json, "rate_jitter", config.rate_jitter);
}

Json to_json(const TraceConfig& config) {
  JsonObject obj;
  obj.emplace("num_days", config.num_days);
  obj.emplace("seed", static_cast<double>(config.seed));
  obj.emplace("rate_scale", config.rate_scale);
  obj.emplace("weekend_rate_factor", config.weekend_rate_factor);
  return Json(std::move(obj));
}

void from_json(const Json& json, TraceConfig& config) {
  check_keys(json,
             {"num_days", "seed", "rate_scale", "weekend_rate_factor"},
             "TraceConfig");
  config.num_days = static_cast<std::size_t>(
      num_or(json, "num_days", static_cast<double>(config.num_days)));
  config.seed = static_cast<std::uint64_t>(
      num_or(json, "seed", static_cast<double>(config.seed)));
  config.rate_scale = num_or(json, "rate_scale", config.rate_scale);
  config.weekend_rate_factor =
      num_or(json, "weekend_rate_factor", config.weekend_rate_factor);
}

Json to_json(const SlicingConfig& config) {
  JsonObject obj;
  obj.emplace("num_antennas", config.num_antennas);
  obj.emplace("eval_days", config.eval_days);
  obj.emplace("calibration_days", config.calibration_days);
  obj.emplace("antenna_decile", static_cast<double>(config.antenna_decile));
  obj.emplace("sla_quantile", config.sla_quantile);
  obj.emplace("seed", static_cast<double>(config.seed));
  obj.emplace("fig12_service", config.fig12_service);
  obj.emplace("fig12_antenna", config.fig12_antenna);
  return Json(std::move(obj));
}

void from_json(const Json& json, SlicingConfig& config) {
  check_keys(json,
             {"num_antennas", "eval_days", "calibration_days",
              "antenna_decile", "sla_quantile", "seed", "fig12_service",
              "fig12_antenna"},
             "SlicingConfig");
  config.num_antennas = static_cast<std::size_t>(
      num_or(json, "num_antennas", static_cast<double>(config.num_antennas)));
  config.eval_days = static_cast<std::size_t>(
      num_or(json, "eval_days", static_cast<double>(config.eval_days)));
  config.calibration_days = static_cast<std::size_t>(num_or(
      json, "calibration_days", static_cast<double>(config.calibration_days)));
  config.antenna_decile = static_cast<std::uint8_t>(num_or(
      json, "antenna_decile", static_cast<double>(config.antenna_decile)));
  config.sla_quantile = num_or(json, "sla_quantile", config.sla_quantile);
  config.seed = static_cast<std::uint64_t>(
      num_or(json, "seed", static_cast<double>(config.seed)));
  if (json.contains("fig12_service")) {
    config.fig12_service = json.at("fig12_service").as_string();
  }
  config.fig12_antenna = static_cast<std::size_t>(num_or(
      json, "fig12_antenna", static_cast<double>(config.fig12_antenna)));
}

namespace {

const char* packing_name(PackingPolicy policy) {
  switch (policy) {
    case PackingPolicy::kFirstFitDecreasing: return "first_fit_decreasing";
    case PackingPolicy::kBestFitDecreasing: return "best_fit_decreasing";
    case PackingPolicy::kWorstFitDecreasing: return "worst_fit_decreasing";
    case PackingPolicy::kNoConsolidation: return "no_consolidation";
  }
  return "first_fit_decreasing";
}

PackingPolicy packing_from(const std::string& name) {
  if (name == "first_fit_decreasing") {
    return PackingPolicy::kFirstFitDecreasing;
  }
  if (name == "best_fit_decreasing") return PackingPolicy::kBestFitDecreasing;
  if (name == "worst_fit_decreasing") {
    return PackingPolicy::kWorstFitDecreasing;
  }
  if (name == "no_consolidation") return PackingPolicy::kNoConsolidation;
  throw ParseError("VranConfig: unknown packing policy '" + name + "'");
}

}  // namespace

Json to_json(const VranConfig& config) {
  JsonObject obj;
  obj.emplace("num_edge_sites", config.num_edge_sites);
  obj.emplace("rus_per_site", config.rus_per_site);
  obj.emplace("num_days", config.num_days);
  obj.emplace("ru_decile", static_cast<double>(config.ru_decile));
  obj.emplace("seed", static_cast<double>(config.seed));
  obj.emplace("ps_capacity_mbps", config.ps.capacity_mbps);
  obj.emplace("ps_idle_w", config.ps.idle_w);
  obj.emplace("ps_max_w", config.ps.max_w);
  obj.emplace("packing", packing_name(config.packing));
  obj.emplace("series_start_minute", config.series_start_minute);
  obj.emplace("series_seconds", config.series_seconds);
  return Json(std::move(obj));
}

void from_json(const Json& json, VranConfig& config) {
  check_keys(json,
             {"num_edge_sites", "rus_per_site", "num_days", "ru_decile",
              "seed", "ps_capacity_mbps", "ps_idle_w", "ps_max_w", "packing",
              "series_start_minute", "series_seconds"},
             "VranConfig");
  config.num_edge_sites = static_cast<std::size_t>(num_or(
      json, "num_edge_sites", static_cast<double>(config.num_edge_sites)));
  config.rus_per_site = static_cast<std::size_t>(
      num_or(json, "rus_per_site", static_cast<double>(config.rus_per_site)));
  config.num_days = static_cast<std::size_t>(
      num_or(json, "num_days", static_cast<double>(config.num_days)));
  config.ru_decile = static_cast<std::uint8_t>(
      num_or(json, "ru_decile", static_cast<double>(config.ru_decile)));
  config.seed = static_cast<std::uint64_t>(
      num_or(json, "seed", static_cast<double>(config.seed)));
  config.ps.capacity_mbps =
      num_or(json, "ps_capacity_mbps", config.ps.capacity_mbps);
  config.ps.idle_w = num_or(json, "ps_idle_w", config.ps.idle_w);
  config.ps.max_w = num_or(json, "ps_max_w", config.ps.max_w);
  if (json.contains("packing")) {
    config.packing = packing_from(json.at("packing").as_string());
  }
  config.series_start_minute = static_cast<std::size_t>(
      num_or(json, "series_start_minute",
             static_cast<double>(config.series_start_minute)));
  config.series_seconds = static_cast<std::size_t>(num_or(
      json, "series_seconds", static_cast<double>(config.series_seconds)));
}

Json to_json(const MobilityConfig& config) {
  JsonObject obj;
  obj.emplace("p_stationary", config.p_stationary);
  obj.emplace("p_pedestrian", config.p_pedestrian);
  obj.emplace("p_vehicular", config.p_vehicular);
  obj.emplace("pedestrian_dwell_median_s", config.pedestrian_dwell_median_s);
  obj.emplace("vehicular_dwell_median_s", config.vehicular_dwell_median_s);
  obj.emplace("dwell_sigma_log10", config.dwell_sigma_log10);
  obj.emplace("max_segments", config.max_segments);
  return Json(std::move(obj));
}

void from_json(const Json& json, MobilityConfig& config) {
  check_keys(json,
             {"p_stationary", "p_pedestrian", "p_vehicular",
              "pedestrian_dwell_median_s", "vehicular_dwell_median_s",
              "dwell_sigma_log10", "max_segments"},
             "MobilityConfig");
  config.p_stationary = num_or(json, "p_stationary", config.p_stationary);
  config.p_pedestrian = num_or(json, "p_pedestrian", config.p_pedestrian);
  config.p_vehicular = num_or(json, "p_vehicular", config.p_vehicular);
  config.pedestrian_dwell_median_s =
      num_or(json, "pedestrian_dwell_median_s",
             config.pedestrian_dwell_median_s);
  config.vehicular_dwell_median_s = num_or(
      json, "vehicular_dwell_median_s", config.vehicular_dwell_median_s);
  config.dwell_sigma_log10 =
      num_or(json, "dwell_sigma_log10", config.dwell_sigma_log10);
  config.max_segments = static_cast<std::size_t>(
      num_or(json, "max_segments", static_cast<double>(config.max_segments)));
}

Json to_json(const PacketScheduleConfig& config) {
  JsonObject obj;
  obj.emplace("mtu_bytes", static_cast<double>(config.mtu_bytes));
  obj.emplace("mean_burst_packets", config.mean_burst_packets);
  obj.emplace("duty_cycle", config.duty_cycle);
  obj.emplace("max_packets", config.max_packets);
  return Json(std::move(obj));
}

void from_json(const Json& json, PacketScheduleConfig& config) {
  check_keys(json,
             {"mtu_bytes", "mean_burst_packets", "duty_cycle", "max_packets"},
             "PacketScheduleConfig");
  config.mtu_bytes = static_cast<std::uint32_t>(
      num_or(json, "mtu_bytes", static_cast<double>(config.mtu_bytes)));
  config.mean_burst_packets =
      num_or(json, "mean_burst_packets", config.mean_burst_packets);
  config.duty_cycle = num_or(json, "duty_cycle", config.duty_cycle);
  config.max_packets = static_cast<std::size_t>(
      num_or(json, "max_packets", static_cast<double>(config.max_packets)));
}

namespace {

BackpressurePolicy backpressure_from(const std::string& name) {
  if (name == "block") return BackpressurePolicy::kBlock;
  if (name == "drop") return BackpressurePolicy::kDropNewest;
  throw ParseError("EngineConfig: unknown backpressure policy '" + name +
                   "'");
}

SinkErrorPolicy sink_error_policy_from(const std::string& name) {
  if (name == "fail_fast") return SinkErrorPolicy::kFailFast;
  if (name == "degrade") return SinkErrorPolicy::kDegrade;
  throw ParseError("EngineConfig: unknown sink error policy '" + name + "'");
}

GeneratorKernel generator_kernel_from(const std::string& name) {
  if (name == "scalar") return GeneratorKernel::kScalar;
  if (name == "batch") return GeneratorKernel::kBatch;
  throw ParseError("EngineConfig: unknown generator kernel '" + name + "'");
}

}  // namespace

Json to_json(const EngineConfig& config) {
  JsonObject obj;
  obj.emplace("num_workers", config.num_workers);
  obj.emplace("queue_capacity", config.queue_capacity);
  obj.emplace("batch_size", config.batch_size);
  obj.emplace("generator_kernel", to_string(config.kernel));
  JsonArray kinds;
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (config.event_kinds.contains(kind)) {
      kinds.emplace_back(to_string(kind));
    }
  }
  obj.emplace("event_kinds", Json(std::move(kinds)));
  obj.emplace("mobility", to_json(config.mobility));
  obj.emplace("packet_schedule", to_json(config.packet));
  obj.emplace("backpressure", to_string(config.backpressure));
  obj.emplace("time_scale", config.time_scale);
  obj.emplace("telemetry_period_s", config.telemetry_period_s);
  obj.emplace("stop_after_days", config.stop_after_days);
  obj.emplace("checkpoint_path", config.checkpoint_path);
  obj.emplace("checkpoint_interval_minutes", config.checkpoint_interval_minutes);
  obj.emplace("sink_error_policy", to_string(config.sink_error_policy));
  obj.emplace("watchdog_timeout_s", config.watchdog_timeout_s);
  obj.emplace("checkpoint_max_attempts", config.checkpoint_max_attempts);
  obj.emplace("checkpoint_backoff_ms", config.checkpoint_backoff_ms);
  // config.fault (a live injector pointer) is intentionally not serialized.
  return Json(std::move(obj));
}

void from_json(const Json& json, EngineConfig& config) {
  check_keys(json,
             {"num_workers", "queue_capacity", "batch_size",
              "generator_kernel", "event_kinds",
              "mobility", "packet_schedule", "backpressure", "time_scale",
              "telemetry_period_s", "stop_after_days", "checkpoint_path",
              "checkpoint_interval_minutes", "sink_error_policy",
              "watchdog_timeout_s", "checkpoint_max_attempts",
              "checkpoint_backoff_ms"},
             "EngineConfig");
  config.num_workers = static_cast<std::size_t>(
      num_or(json, "num_workers", static_cast<double>(config.num_workers)));
  config.queue_capacity = static_cast<std::size_t>(num_or(
      json, "queue_capacity", static_cast<double>(config.queue_capacity)));
  config.batch_size = static_cast<std::size_t>(
      num_or(json, "batch_size", static_cast<double>(config.batch_size)));
  if (json.contains("generator_kernel")) {
    config.kernel =
        generator_kernel_from(json.at("generator_kernel").as_string());
  }
  if (json.contains("event_kinds")) {
    EventKindMask mask;
    for (const Json& kind : json.at("event_kinds").as_array()) {
      mask.set(event_kind_from_name(kind.as_string()));
    }
    config.event_kinds = mask;
  }
  if (json.contains("mobility")) {
    from_json(json.at("mobility"), config.mobility);
  }
  if (json.contains("packet_schedule")) {
    from_json(json.at("packet_schedule"), config.packet);
  }
  if (json.contains("backpressure")) {
    config.backpressure =
        backpressure_from(json.at("backpressure").as_string());
  }
  config.time_scale = num_or(json, "time_scale", config.time_scale);
  config.telemetry_period_s =
      num_or(json, "telemetry_period_s", config.telemetry_period_s);
  config.stop_after_days = static_cast<std::size_t>(num_or(
      json, "stop_after_days", static_cast<double>(config.stop_after_days)));
  if (json.contains("checkpoint_path")) {
    config.checkpoint_path = json.at("checkpoint_path").as_string();
  }
  config.checkpoint_interval_minutes = static_cast<std::size_t>(
      num_or(json, "checkpoint_interval_minutes",
             static_cast<double>(config.checkpoint_interval_minutes)));
  if (json.contains("sink_error_policy")) {
    config.sink_error_policy =
        sink_error_policy_from(json.at("sink_error_policy").as_string());
  }
  config.watchdog_timeout_s =
      num_or(json, "watchdog_timeout_s", config.watchdog_timeout_s);
  config.checkpoint_max_attempts = static_cast<std::size_t>(
      num_or(json, "checkpoint_max_attempts",
             static_cast<double>(config.checkpoint_max_attempts)));
  config.checkpoint_backoff_ms =
      num_or(json, "checkpoint_backoff_ms", config.checkpoint_backoff_ms);
}

Json Scenario::to_json() const {
  JsonObject obj;
  obj.emplace("network", mtd::to_json(network));
  obj.emplace("trace", mtd::to_json(trace));
  obj.emplace("slicing", mtd::to_json(slicing));
  obj.emplace("vran", mtd::to_json(vran));
  obj.emplace("engine", mtd::to_json(engine));
  return Json(std::move(obj));
}

Scenario Scenario::from_json(const Json& json) {
  check_keys(json, {"network", "trace", "slicing", "vran", "engine"},
             "Scenario");
  Scenario scenario;
  if (json.contains("network")) {
    mtd::from_json(json.at("network"), scenario.network);
  }
  if (json.contains("trace")) {
    mtd::from_json(json.at("trace"), scenario.trace);
  }
  if (json.contains("slicing")) {
    mtd::from_json(json.at("slicing"), scenario.slicing);
  }
  if (json.contains("vran")) {
    mtd::from_json(json.at("vran"), scenario.vran);
  }
  if (json.contains("engine")) {
    mtd::from_json(json.at("engine"), scenario.engine);
  }
  return scenario;
}

Scenario Scenario::load(const std::string& path) {
  return from_json(Json::parse(read_file(path)));
}

void Scenario::save(const std::string& path) const {
  write_file(path, to_json().dump(2));
}

}  // namespace mtd
