// Multi-lane block RNG for the SoA batch generation kernels.
//
// BlockRng is the batch-path counterpart of mtd::Rng: four xoshiro256**
// lanes advanced in lockstep (the state is stored lane-SoA so the step
// auto-vectorizes) plus a fifth scalar "tail" lane for data-dependent
// draws (dwell-time truncation, arrival counts) that cannot be batched.
//
// ## The versioned seed->stream mapping (v1)
//
// The batch kernel does NOT reproduce the scalar per-(BS, day) stream —
// lane interleaving and fixed-draw-count Box-Muller necessarily change
// the draw order. Instead the batch stream is its own deterministic,
// *versioned* function of the scalar stream's seed state:
//
//   Given the scalar stream base = TraceGenerator::bs_day_rng(bs, day)
//   with state words s[0..3] (pure function of seed, bs.id, day; no draws
//   consumed), the BlockRng for block index b (the engine uses b =
//   minute_of_day) seeds lane l in {0..3} and the tail (l = 4) as
//
//     SplitMix64 sm(s[0] ^ s[1] ^ kStreamSalt
//                        ^ (0x9e3779b97f4a7c15 * (b * 8 + l + 1)));
//     lane state = { sm.next(), sm.next(), sm.next(), sm.next() }
//
//   and draws are consumed as documented on each member below
//   (uniform_block interleaves lanes round-robin, normal_pair_block is
//   one Box-Muller pair per output index, tail draws are scalar).
//
// kStreamVersion identifies this mapping. Tests pin it with committed
// digests (tests/test_batch_rng.cpp); any change to the seeding, the lane
// interleave, the polynomial kernels, or the per-minute draw layout of
// SessionBlockKernel is a stream break and MUST bump kStreamVersion,
// refresh the digests, and document the bump in DESIGN.md sec. 16.
// Every kernel on this path is libm-free (common/batch_rng/vec_math.hpp),
// so the digests hold across compilers, libm versions, and -march levels.
//
// Seeding per block index makes every (BS, day, minute) block stream
// independent: generation order across blocks is irrelevant (the same
// property per-(BS, day) scalar streams give the sharded engine) and
// mid-day resume needs no RNG cursor for the batch path at all.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/batch_rng/vec_math.hpp"
#include "common/rng.hpp"

namespace mtd {

class BlockRng {
 public:
  /// Version of the seed->stream mapping documented above.
  static constexpr std::uint32_t kStreamVersion = 1;
  /// Block lanes (the tail is extra).
  static constexpr std::size_t kLanes = 4;
  /// Salt of the v1 mapping ("MTD_brn1").
  static constexpr std::uint64_t kStreamSalt = 0x4d54445f62726e31ULL;

  /// Seeds all five lanes from the scalar stream state per the v1 mapping.
  BlockRng(const Rng& base, std::uint64_t block_index) noexcept;

  /// Fills out[0..n) with uniforms in [0, 1), lane-interleaved: out[i]
  /// comes from lane i % 4, draw i / 4. A block call consumes exactly
  /// ceil(n / 4) draws from EVERY lane (ragged leftovers are discarded),
  /// so the consumed count — and hence the stream — depends only on n.
  void uniform_block(double* out, std::size_t n) noexcept {
    fill(out, n, /*open=*/false);
  }

  /// Same interleave, uniforms in (0, 1] (Box-Muller's log argument).
  void uniform_open_block(double* out, std::size_t n) noexcept {
    fill(out, n, /*open=*/true);
  }

  /// n Box-Muller pairs: consumes one uniform_open_block(n) for the radii
  /// followed by one uniform_block(n) for the angles, then writes
  /// z0[i] = r_i cos(2 pi u_i), z1[i] = r_i sin(2 pi u_i). Scratch must
  /// hold 2 n doubles.
  void normal_pair_block(double* z0, double* z1, double* scratch,
                         std::size_t n) noexcept {
    double* ua = scratch;
    double* ub = scratch + n;
    uniform_open_block(ua, n);
    uniform_block(ub, n);
    vec::normal_pair_block(ua, ub, z0, z1, n);
  }

  // -- tail lane: scalar, data-dependent draws ------------------------------

  /// Uniform in [0, 1) from the tail lane.
  double tail_uniform() noexcept {
    return static_cast<double>(step(tail_) >> 11) * 0x1.0p-53;
  }

  /// One standard normal from the tail lane: a full Box-Muller pair is
  /// drawn (two tail uniforms) and the sine half is discarded — a fixed
  /// draw count per call keeps the tail stream trivially documentable.
  double tail_normal() noexcept {
    const double ua =
        static_cast<double>((step(tail_) >> 11) + 1) * 0x1.0p-53;
    const double ub = static_cast<double>(step(tail_) >> 11) * 0x1.0p-53;
    double z0 = 0.0;
    double z1 = 0.0;
    vec::normal_pair_block(&ua, &ub, &z0, &z1, 1);
    return z0;
  }

  /// 10^N(mu, sigma) from the tail lane (dwell-time draws).
  double tail_log10_normal(double mu, double sigma) noexcept {
    return vec::pow10_poly(mu + sigma * tail_normal());
  }

  /// Pareto (type I) from the tail lane: scale * u^{-1/shape} with u in
  /// (0, 1], evaluated via the polynomial exp2/log2 pair.
  double tail_pareto(double shape, double scale) noexcept {
    const double u =
        static_cast<double>((step(tail_) >> 11) + 1) * 0x1.0p-53;
    return scale * vec::exp2_poly(-vec::log2_poly(u) / shape);
  }

 private:
  using LaneState = std::array<std::uint64_t, 4>;

  static std::uint64_t step(LaneState& s) noexcept;
  void fill(double* out, std::size_t n, bool open) noexcept;

  /// Lane-SoA xoshiro state: word_[w][l] is word w of lane l, so the
  /// 4-lane step is four vectorizable word operations.
  std::array<std::array<std::uint64_t, kLanes>, 4> word_{};
  LaneState tail_{};
};

}  // namespace mtd
