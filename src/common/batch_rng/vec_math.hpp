// Vectorizable transcendental kernels for the SoA batch generation path.
//
// Every function here is branch-free straight-line arithmetic over plain
// doubles — no libm calls, no lookup tables, no data-dependent control
// flow — so GCC/Clang auto-vectorize the *_block loops at any target ISA
// and, crucially, the results are bit-identical across scalar SSE2 and
// AVX2/AVX-512 codegen. The top-level CMakeLists compiles the whole tree
// with -ffp-contract=off, which keeps the compiler from fusing these
// multiply-adds into FMAs on -march=x86-64-v3 builds; together with
// correctly-rounded sqrt that makes the batch stream (BlockRng, DESIGN.md
// sec. 16) a pure function of the seed on every x86-64 build we CI.
//
// Accuracy targets are set by the consumer: these kernels feed stochastic
// draws (volumes, durations, Box-Muller normals), where ~1e-9 relative
// error is orders of magnitude below sampling noise. They are NOT general
// replacements for libm — inputs are clamped to the sampling ranges the
// generator produces and subnormal handling is deliberately skipped.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstddef>

namespace mtd::vec {

/// log2(10) to full double precision (shared with mtd::pow10_fast).
inline constexpr double kLog2Of10 = 3.321928094887362347870319429489390175865;
/// ln(2) to full double precision.
inline constexpr double kLn2 = 6.93147180559945286e-01;

/// 1.5 * 2^52. Adding it to |x| < 2^51 rounds x to the nearest integer
/// (ties to even) *in the low mantissa bits*: k = (x + kRoundMagic) -
/// kRoundMagic recovers the rounded value, and the sum's raw bits hold
/// the two's-complement integer directly. double<->int64 conversions have
/// no SSE2 instruction (they block vectorization on baseline x86-64);
/// this trick needs only FP adds and int64 bit ops, which all vectorize.
inline constexpr double kRoundMagic = 6755399441055744.0;
/// 2^52; bit-OR of an integer v in [0, 2^52) with these exponent bits
/// makes the double 2^52 + v, so double(v) = or - kExpMagic without an
/// int64->double conversion.
inline constexpr double kExpMagic = 4503599627370496.0;

/// 2^x for x in [-1021, 1023]: split x = k + r with k = round(x) and
/// r in [-0.5, 0.5], evaluate 2^r by the degree-10 Taylor polynomial of
/// e^{r ln 2} (max relative error ~1e-12 on the interval) and apply the
/// integer scale 2^k through the exponent bits. Inputs below -1021 flush
/// the scale into the denormal range and are clamped instead; the
/// generator never produces them (log10 volumes are clamped at -4).
[[nodiscard]] inline double exp2_poly(double x) noexcept {
  x = x < -1021.0 ? -1021.0 : (x > 1023.0 ? 1023.0 : x);
  // Magic-number rounding (see kRoundMagic): k = rint(x) and kd's raw
  // bits carry k as an integer, branch- and conversion-free.
  const double kd = x + kRoundMagic;
  const double k = kd - kRoundMagic;
  const double r = x - k;  // [-0.5, 0.5]
  // Horner over (ln2)^j / j!, j = 10 .. 0.
  double p = 7.05491162080112088e-09;
  p = p * r + 1.01780860092396960e-07;
  p = p * r + 1.32154867901443053e-06;
  p = p * r + 1.52527338040598377e-05;
  p = p * r + 1.54035303933816061e-04;
  p = p * r + 1.33335581464284411e-03;
  p = p * r + 9.61812910762847688e-03;
  p = p * r + 5.55041086648215762e-02;
  p = p * r + 2.40226506959100694e-01;
  p = p * r + 6.93147180559945286e-01;
  p = p * r + 1.00000000000000000e+00;
  // 2^k via exponent bits: kd's low bits hold integer k (two's
  // complement), and << 52 keeps exactly the biased-exponent field;
  // k in [-1021, 1023] keeps it in the normal range.
  const std::uint64_t scale_bits =
      (std::bit_cast<std::uint64_t>(kd) + 1023) << 52;
  return p * std::bit_cast<double>(scale_bits);
}

/// log2(x) for normal positive x (the generator feeds uniforms in
/// (0, 1] and volumes in [1e-4, ~1e6]; subnormals are never produced).
/// Mantissa reduced to [sqrt(0.5), sqrt(2)), then the artanh series
/// ln m = 2(z + z^3/3 + ... + z^13/13) with z = (m-1)/(m+1), |z| <=
/// 0.1716; max relative error ~4e-13.
[[nodiscard]] inline double log2_poly(double x) noexcept {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  // Exponent field to double via kExpMagic (no int64->double conversion):
  // OR the 11-bit field into 2^52's mantissa and subtract the offset.
  double e = std::bit_cast<double>(((bits >> 52) & 0x7ff) |
                                   std::bit_cast<std::uint64_t>(kExpMagic)) -
             (kExpMagic + 1022.0);
  // Mantissa in [0.5, 1).
  double m = std::bit_cast<double>((bits & 0xfffffffffffffULL) |
                                   0x3fe0000000000000ULL);
  // Fold into [sqrt(0.5), sqrt(2)) so z is centered on 0.
  const bool low = m < 7.07106781186547573e-01;
  m = low ? 2.0 * m : m;
  e = low ? e - 1.0 : e;
  const double z = (m - 1.0) / (m + 1.0);
  const double z2 = z * z;
  double p = 1.0 / 13.0;
  p = p * z2 + 1.0 / 11.0;
  p = p * z2 + 1.0 / 9.0;
  p = p * z2 + 1.0 / 7.0;
  p = p * z2 + 1.0 / 5.0;
  p = p * z2 + 1.0 / 3.0;
  p = p * z2 + 1.0;
  // log2 m = (2 / ln 2) * artanh-series(z).
  return e + z * p * 2.88539008177792677e+00;
}

/// 10^x: exp2_poly(x * log2 10). The batch-stream analogue of
/// mtd::pow10_fast (which calls libm exp2 and therefore may differ in the
/// last ulp across libm versions — the batch stream must not).
[[nodiscard]] inline double pow10_poly(double x) noexcept {
  return exp2_poly(x * kLog2Of10);
}

/// sin(pi a) for a in [-0.5, 0.5]: Taylor to x^13, |error| < 7e-10.
[[nodiscard]] inline double sinpi_poly(double a) noexcept {
  const double x = a * 3.14159265358979312e+00;
  const double x2 = x * x;
  double p = 1.60590438368216133e-10;
  p = p * x2 + -2.50521083854417202e-08;
  p = p * x2 + 2.75573192239858925e-06;
  p = p * x2 + -1.98412698412698413e-04;
  p = p * x2 + 8.33333333333333322e-03;
  p = p * x2 + -1.66666666666666657e-01;
  p = p * x2 + 1.00000000000000000e+00;
  return x * p;
}

/// cos(pi a) for a in [-0.5, 0.5]: Taylor to x^14, |error| < 7e-11.
[[nodiscard]] inline double cospi_poly(double a) noexcept {
  const double x = a * 3.14159265358979312e+00;
  const double x2 = x * x;
  double p = -1.14707455977297245e-11;
  p = p * x2 + 2.08767569878681002e-09;
  p = p * x2 + -2.75573192239858883e-07;
  p = p * x2 + 2.48015873015873016e-05;
  p = p * x2 + -1.38888888888888894e-03;
  p = p * x2 + 4.16666666666666644e-02;
  p = p * x2 + -5.00000000000000000e-01;
  p = p * x2 + 1.00000000000000000e+00;
  return p;
}

/// out[i] = 2^{x[i]}; the loop body is exp2_poly, which auto-vectorizes.
inline void exp2_block(const double* x, double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = exp2_poly(x[i]);
}

/// out[i] = log2(x[i]).
inline void log2_block(const double* x, double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = log2_poly(x[i]);
}

/// out[i] = 10^{x[i]}.
inline void pow10_block(const double* x, double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = pow10_poly(x[i]);
}

/// Box-Muller over precomputed uniforms: ua in (0, 1], ub in [0, 1).
///   r = sqrt(-2 ln ua), theta = 2 pi ub,
///   z0 = r cos theta, z1 = r sin theta.
/// The angle is range-reduced in turn units: with h = 2 ub and q =
/// round(h), a = h - q lies in [-0.5, 0.5] and cos(2 pi ub) =
/// (1 - 2(q & 1)) cos(pi a) (same sign flip for sin). Everything is
/// branch-free; sqrt is IEEE-correctly-rounded, so the block is
/// bit-stable across vector widths.
inline void normal_pair_block(const double* ua, const double* ub, double* z0,
                              double* z1, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double lg = log2_poly(ua[i]);            // <= 0
    const double r = std::sqrt(-2.0 * kLn2 * lg);  // [0, ~8.57]
    const double h = 2.0 * ub[i];
    // Magic-number rounding: q = rint(h), parity of q in hd's bit 0.
    const double hd = h + kRoundMagic;
    const double q = hd - kRoundMagic;
    const double a = h - q;  // [-0.5, 0.5]
    const double parity = std::bit_cast<double>(
                              (std::bit_cast<std::uint64_t>(hd) & 1) |
                              std::bit_cast<std::uint64_t>(kExpMagic)) -
                          kExpMagic;               // q & 1, exactly
    const double sign = 1.0 - 2.0 * parity;        // 1 - 2(q&1)
    z0[i] = r * sign * cospi_poly(a);
    z1[i] = r * sign * sinpi_poly(a);
  }
}

}  // namespace mtd::vec
