#include "common/batch_rng/block_rng.hpp"

namespace mtd {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

BlockRng::BlockRng(const Rng& base, std::uint64_t block_index) noexcept {
  const std::array<std::uint64_t, 4> s = base.state();
  // v1 mapping: see the class comment. Lane 4 is the tail.
  for (std::size_t l = 0; l < kLanes + 1; ++l) {
    SplitMix64 sm(s[0] ^ s[1] ^ kStreamSalt ^
                  (0x9e3779b97f4a7c15ULL * (block_index * 8 + l + 1)));
    if (l < kLanes) {
      for (std::size_t w = 0; w < 4; ++w) word_[w][l] = sm.next();
    } else {
      for (std::size_t w = 0; w < 4; ++w) tail_[w] = sm.next();
    }
  }
}

std::uint64_t BlockRng::step(LaneState& s) noexcept {
  const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
  const std::uint64_t t = s[1] << 17;
  s[2] ^= s[0];
  s[3] ^= s[1];
  s[1] ^= s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = rotl(s[3], 45);
  return result;
}

void BlockRng::fill(double* out, std::size_t n, bool open) noexcept {
  // One round advances all four lanes; out[i] = lane i % 4, draw i / 4.
  // The lane step is the same xoshiro256** recurrence as mtd::Rng, just
  // evaluated word-SoA across lanes so the loop vectorizes.
  const double offset = open ? 1.0 : 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::array<std::uint64_t, kLanes> r;
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::uint64_t result = rotl(word_[1][l] * 5, 7) * 9;
      const std::uint64_t t = word_[1][l] << 17;
      word_[2][l] ^= word_[0][l];
      word_[3][l] ^= word_[1][l];
      word_[1][l] ^= word_[2][l];
      word_[0][l] ^= word_[3][l];
      word_[2][l] ^= t;
      word_[3][l] = rotl(word_[3][l], 45);
      r[l] = result;
    }
    const std::size_t take = n - i < kLanes ? n - i : kLanes;
    for (std::size_t l = 0; l < take; ++l) {
      out[i + l] =
          (static_cast<double>(r[l] >> 11) + offset) * 0x1.0p-53;
    }
    i += take;
  }
}

}  // namespace mtd
