// Descriptive statistics over plain samples and weighted samples.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mtd {

/// Streaming accumulator for mean/variance/skewness (Welford / Terriberry).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Fisher-Pearson skewness estimate; 0 for fewer than three samples.
  [[nodiscard]] double skewness() const noexcept;
  /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
  [[nodiscard]] double cv() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double variance(std::span<const double> xs) noexcept;
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Weighted mean; weights need not be normalized. Returns 0 on empty input or
/// zero total weight.
[[nodiscard]] double weighted_mean(std::span<const double> xs,
                                   std::span<const double> ws);

/// Linear-interpolation quantile over a copy of the samples; q in [0, 1].
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Quantile over samples already sorted ascending (no copy).
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Five-number summary used by the boxplot figures (Fig. 8 of the paper):
/// whiskers at the 5th/95th percentiles, box at the quartiles.
struct BoxplotStats {
  double p5 = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double p95 = 0.0;
};

[[nodiscard]] BoxplotStats boxplot_stats(std::span<const double> xs);

/// Pearson correlation coefficient; 0 when either side is constant.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Coefficient of determination of predictions `fit` against observations
/// `obs`: 1 - SS_res / SS_tot. Returns 1 for a perfect fit of constant data.
[[nodiscard]] double r_squared(std::span<const double> obs,
                               std::span<const double> fit);

}  // namespace mtd
