// Deterministic failure injection (lives in common/ so layers below the
// engine — the trace store's commit path — can compile in points too).
//
// A FaultInjector is a registry of named failure points compiled into the
// system's hot paths (worker day loop, consumer drain loop, the sink
// adapter call sites, the checkpoint writer, the trace-store commit).
// Production runs pass no injector and every point is a branch on a null
// pointer; tests arm individual points to throw a foreign exception, raise
// a typed retryable error, stall for a fixed time, or fail
// probabilistically from a seeded RNG — so every failure path in
// engine/store/supervisor code is exercised deterministically, without
// mocks or real faulty hardware.
//
// Compiled-in points:
//   worker.day            fired by each shard worker at every day start
//   worker.session        fired before each generated session is staged
//   sink.minute           fired before each minute-event sink delivery
//   sink.session          fired before each session-event sink delivery
//   sink.segment          fired before each segment-event sink delivery
//   sink.packet           fired before each packet-event sink delivery
//   consumer.loop         fired once per consumer sweep (stall target)
//   checkpoint.write      fired by EngineCheckpoint::save before writing
//   store.commit.pages    fired by TraceStoreWriter::commit before the
//                         segment pages are appended
//   store.commit.sync     fired after the append, before the page flush
//   store.commit.manifest fired before the atomic manifest replace
//   store.compact.pages   fired by TraceStoreWriter::compact before the
//                         merged segment's pages are appended
//   store.compact.sync    fired after the append, before the page flush
//   store.compact.manifest fired before the atomic manifest replace that
//                         swaps the merged segment in
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"

namespace mtd {

/// What an armed failure point does when it fires.
enum class FaultAction : std::uint8_t {
  kError,  ///< throw InjectedFault (an mtd EngineError, retryable)
  kThrow,  ///< throw std::runtime_error — a foreign, non-retryable exception
  kStall,  ///< sleep for stall_ms, then return normally
};

/// The exception raised by FaultAction::kError. Retryable, so supervised
/// runs recover from it; tests catch it to distinguish injected failures
/// from organic ones.
class InjectedFault : public EngineError {
 public:
  explicit InjectedFault(const std::string& what) : EngineError(what, true) {}
};

/// How one failure point misbehaves once armed.
struct FaultSpec {
  FaultAction action = FaultAction::kError;
  /// Chance that an eligible hit fires, drawn from the injector's seeded
  /// RNG; 1.0 fires on every eligible hit.
  double probability = 1.0;
  /// Number of initial hits that pass through unharmed before the point
  /// becomes eligible (e.g. "fail on the third checkpoint write").
  std::uint64_t after = 0;
  /// Maximum number of times the point fires; kUnlimited never disarms.
  std::uint64_t times = 1;
  /// kStall only: how long the firing thread sleeps.
  double stall_ms = 0.0;

  static constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};
};

/// Thread-safe registry of armed failure points. Fire sites may be hit from
/// any engine thread; arming/disarming normally happens before run().
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0) : rng_(seed) {}

  /// Arms (or re-arms, resetting counters) the named point.
  void arm(const std::string& point, FaultSpec spec) MTD_EXCLUDES(mutex_);

  /// Disarms the point; unknown names are a no-op.
  void disarm(const std::string& point) MTD_EXCLUDES(mutex_);

  /// Called by the compiled-in sites. Unarmed points only pay the map
  /// lookup; armed points count the hit and apply their FaultSpec, which
  /// may throw or stall. Never throws for unarmed points.
  void fire(const char* point) MTD_EXCLUDES(mutex_);

  /// Total times the point was reached (armed hits only).
  [[nodiscard]] std::uint64_t hits(const std::string& point) const
      MTD_EXCLUDES(mutex_);
  /// Times the point actually fired its action.
  [[nodiscard]] std::uint64_t fired(const std::string& point) const
      MTD_EXCLUDES(mutex_);

  /// Every failure point compiled into the tree, sorted — the registry the
  /// chaos soak arms exhaustively (`mtd_chaos --faults all`). The list must
  /// name every fault_fire call site; a grep-style test
  /// (FaultPoints.RegistryCoversEveryFireSite) fails the build tree when a
  /// new point is added without registering it here.
  [[nodiscard]] static const std::vector<std::string>& known_points();

 private:
  struct Armed {
    FaultSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  mutable Mutex mutex_;
  std::map<std::string, Armed, std::less<>> points_ MTD_GUARDED_BY(mutex_);
  /// Probability draws happen under the lock: concurrent fire() calls on
  /// armed points must consume the seeded stream in a serialized order.
  Rng rng_ MTD_GUARDED_BY(mutex_);
};

/// Null-safe fire helper used at every compiled-in site.
inline void fault_fire(FaultInjector* injector, const char* point) {
  if (injector != nullptr) injector->fire(point);
}

}  // namespace mtd
