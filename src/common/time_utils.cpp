#include "common/time_utils.hpp"

#include <cmath>

namespace mtd {

namespace {
// Logistic ramp centered at `center` minutes with steepness `k` (1/minutes).
double ramp(double minute, double center, double k) noexcept {
  return 1.0 / (1.0 + std::exp(-k * (minute - center)));
}
}  // namespace

double circadian_activity(std::size_t minute_of_day) noexcept {
  const double m = static_cast<double>(minute_of_day % kMinutesPerDay);
  // Morning rise around 07:30, night fall around 23:00; both transitions
  // complete within roughly half an hour, matching the "very rapid"
  // day/night switches observed in the measurements.
  const double rise = ramp(m, 7.5 * 60.0, 0.15);
  const double fall = 1.0 - ramp(m, 23.0 * 60.0, 0.15);
  double activity = rise * fall;
  // Mild evening bump (~19:00) on top of the daytime plateau.
  activity *= 1.0 + 0.15 * std::exp(-std::pow((m - 19.0 * 60.0) / 90.0, 2.0));
  // Residual overnight background so the off-peak rate is small but nonzero.
  return 0.02 + 0.98 * std::fmin(activity, 1.0);
}

const CircadianTables& circadian_tables() noexcept {
  static const CircadianTables tables = [] {
    CircadianTables t;
    for (std::size_t m = 0; m < kMinutesPerDay; ++m) {
      t.activity[m] = circadian_activity(m);
      t.day_phase[m] = t.activity[m] > kCircadianDayThreshold;
    }
    return t;
  }();
  return tables;
}

double circadian_high_fraction() noexcept {
  const CircadianTables& tables = circadian_tables();
  std::size_t high = 0;
  for (std::size_t m = 0; m < kMinutesPerDay; ++m) {
    if (tables.day_phase[m]) ++high;
  }
  return static_cast<double>(high) / static_cast<double>(kMinutesPerDay);
}

}  // namespace mtd
