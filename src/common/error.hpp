// Error types shared across the mobile-traffic-demands (mtd) library.
#pragma once

#include <stdexcept>
#include <string>

namespace mtd {

/// Base class for every error thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller supplied an argument outside the documented domain.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or produced a degenerate result.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Malformed input while parsing serialized models or traces.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid(const std::string& what) {
  throw InvalidArgument(what);
}
}  // namespace detail

/// Throws InvalidArgument with `what` unless `cond` holds.
inline void require(bool cond, const std::string& what) {
  if (!cond) detail::throw_invalid(what);
}

}  // namespace mtd
