// Error types shared across the mobile-traffic-demands (mtd) library.
//
// Every mtd error carries a retryability classification: `retryable()` is
// true when the failure is transient (an I/O hiccup, an injected fault, a
// watchdog-detected stall) and a caller holding a consistent checkpoint may
// reasonably re-attempt the operation, false when retrying cannot help (bad
// arguments, malformed input, numerical degeneracy). The engine Supervisor
// keys its restart decision off this bit.
#pragma once

#include <stdexcept>
#include <string>

namespace mtd {

/// Base class for every error thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, bool retryable = false)
      : std::runtime_error(what), retryable_(retryable) {}

  /// True when the failure is transient and the operation may be retried
  /// from a consistent state (see engine/supervisor.hpp).
  [[nodiscard]] bool retryable() const noexcept { return retryable_; }

 private:
  bool retryable_;
};

/// A caller supplied an argument outside the documented domain.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or produced a degenerate result.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Malformed input while parsing serialized models or traces.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A filesystem or stream operation failed (open, short write, rename).
/// Retryable by default: disks fill, NFS blips, paths reappear.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what, bool retryable = true)
      : Error(what, retryable) {}
};

/// A runtime failure inside the streaming engine (worker fault, watchdog
/// stall, supervision giving up). Retryability is decided at the throw
/// site: a stalled-consumer shutdown is retryable from the last checkpoint,
/// exhausted supervision is not.
class EngineError : public Error {
 public:
  explicit EngineError(const std::string& what, bool retryable = false)
      : Error(what, retryable) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid(const std::string& what) {
  throw InvalidArgument(what);
}
}  // namespace detail

/// Throws InvalidArgument with `what` unless `cond` holds.
inline void require(bool cond, const std::string& what) {
  if (!cond) detail::throw_invalid(what);
}

}  // namespace mtd
