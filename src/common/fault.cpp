#include "common/fault.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace mtd {

void FaultInjector::arm(const std::string& point, FaultSpec spec) {
  MutexLock lock(mutex_);
  points_[point] = Armed{spec, 0, 0};
}

void FaultInjector::disarm(const std::string& point) {
  MutexLock lock(mutex_);
  points_.erase(point);
}

void FaultInjector::fire(const char* point) {
  FaultAction action;
  double stall_ms;
  {
    MutexLock lock(mutex_);
    const auto it = points_.find(point);
    if (it == points_.end()) return;
    Armed& armed = it->second;
    const std::uint64_t hit = armed.hits++;
    if (hit < armed.spec.after) return;
    if (armed.spec.times != FaultSpec::kUnlimited &&
        armed.fired >= armed.spec.times) {
      return;
    }
    if (armed.spec.probability < 1.0 &&
        !rng_.bernoulli(armed.spec.probability)) {
      return;
    }
    ++armed.fired;
    action = armed.spec.action;
    stall_ms = armed.spec.stall_ms;
  }
  // Act outside the lock: a stalled point must not serialize other threads'
  // (unarmed) fire calls, and throwing with a held lock is just rude.
  switch (action) {
    case FaultAction::kError:
      throw InjectedFault(std::string("injected fault at ") + point);
    case FaultAction::kThrow:
      throw std::runtime_error(std::string("injected exception at ") + point);
    case FaultAction::kStall:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          stall_ms));
      break;
  }
}

std::uint64_t FaultInjector::hits(const std::string& point) const {
  MutexLock lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::fired(const std::string& point) const {
  MutexLock lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fired;
}

const std::vector<std::string>& FaultInjector::known_points() {
  // Sorted; keep in sync with the compiled-in sites listed in the header
  // (tests grep the tree for fault_fire call sites and compare).
  static const std::vector<std::string> points = {
      "checkpoint.write",
      "consumer.loop",
      "sink.minute",
      "sink.packet",
      "sink.segment",
      "sink.session",
      "store.commit.manifest",
      "store.commit.pages",
      "store.commit.sync",
      "store.compact.manifest",
      "store.compact.pages",
      "store.compact.sync",
      "worker.day",
      "worker.session",
  };
  return points;
}

}  // namespace mtd
