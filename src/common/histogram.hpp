// Binned probability density functions and binned mean curves.
//
// The measurement pipeline of the paper represents, per (service, BS, day):
//   - F_s^{c,t}(x): a PDF of per-session traffic volume, which we bin
//     uniformly in u = log10(volume) coordinates, and
//   - v_s^{c,t}(d): pairs of discretized session duration and the mean volume
//     of sessions with that duration, which we bin in log10(duration).
//
// Both containers support the weighted averaging of Eqs. (1) and (2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace mtd {

/// A uniform axis over [lo, hi) in coordinate space with `bins` equal bins.
///
/// The axis is agnostic of the coordinate transform: volume PDFs use
/// u = log10(MB), duration curves use log10(seconds), arrival-rate PDFs use
/// plain sessions/minute. Callers apply the transform before indexing.
class Axis {
 public:
  Axis(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), bins_(bins) {
    require(bins > 0, "Axis: need at least one bin");
    require(hi > lo, "Axis: hi must exceed lo");
  }

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bins() const noexcept { return bins_; }
  [[nodiscard]] double width() const noexcept {
    return (hi_ - lo_) / static_cast<double>(bins_);
  }
  [[nodiscard]] double center(std::size_t i) const noexcept {
    return lo_ + (static_cast<double>(i) + 0.5) * width();
  }
  [[nodiscard]] double edge(std::size_t i) const noexcept {
    return lo_ + static_cast<double>(i) * width();
  }
  /// Bin index of `u`, clamped to [0, bins-1] so out-of-range samples
  /// accumulate in the boundary bins instead of being dropped.
  [[nodiscard]] std::size_t index_clamped(double u) const noexcept;
  /// True when `u` falls inside [lo, hi).
  [[nodiscard]] bool contains(double u) const noexcept {
    return u >= lo_ && u < hi_;
  }

  friend bool operator==(const Axis& a, const Axis& b) noexcept {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_ && a.bins_ == b.bins_;
  }

 private:
  double lo_;
  double hi_;
  std::size_t bins_;
};

/// A probability density function over a uniform Axis.
///
/// Density values are per unit of axis coordinate, so
/// sum(density) * axis.width() == 1 after normalize().
class BinnedPdf {
 public:
  explicit BinnedPdf(Axis axis)
      : axis_(axis), density_(axis.bins(), 0.0) {}

  /// Builds a normalized PDF from raw coordinate samples (already
  /// transformed; e.g. log10 of the volume in MB).
  static BinnedPdf from_samples(const Axis& axis,
                                std::span<const double> coords);

  [[nodiscard]] const Axis& axis() const noexcept { return axis_; }
  [[nodiscard]] std::span<const double> density() const noexcept {
    return density_;
  }
  [[nodiscard]] double& operator[](std::size_t i) { return density_[i]; }
  [[nodiscard]] double operator[](std::size_t i) const { return density_[i]; }
  [[nodiscard]] std::size_t size() const noexcept { return density_.size(); }

  /// Adds one sample with the given weight (density normalization deferred).
  void add(double coord, double weight = 1.0) noexcept {
    density_[axis_.index_clamped(coord)] += weight;
  }

  /// Total integral of the density over the axis.
  [[nodiscard]] double integral() const noexcept;

  /// Scales the density so that it integrates to one. No-op on an all-zero
  /// PDF.
  void normalize() noexcept;

  /// Mean of the coordinate under this density.
  [[nodiscard]] double mean() const noexcept;
  /// Standard deviation of the coordinate under this density.
  [[nodiscard]] double stddev() const noexcept;

  /// Returns a copy whose coordinate mean is zero (grid extended as needed is
  /// avoided by shifting density across the same grid; mass shifted past an
  /// edge accumulates at the edge). Used by the clustering analysis, which
  /// compares PDF *shapes* irrespective of absolute traffic volume.
  [[nodiscard]] BinnedPdf centered() const;

  /// Cumulative distribution at each bin's right edge.
  [[nodiscard]] std::vector<double> cdf() const;

  /// Coordinate below which a fraction `q` of the mass lies (linear
  /// interpolation inside the bin). Requires a normalized, non-empty PDF.
  [[nodiscard]] double quantile(double q) const;

  /// Weighted accumulation: this += weight * other (same axis required).
  /// Together with normalize(), implements the mixture averaging of Eq. (2).
  void accumulate(const BinnedPdf& other, double weight);

  /// Index of the highest-density bin.
  [[nodiscard]] std::size_t argmax() const noexcept;

 private:
  Axis axis_;
  std::vector<double> density_;
};

/// Weighted mixture average of PDFs per Eq. (2): sum(w_i F_i) / sum(w_i).
/// All PDFs must share the same axis; weights must be non-negative with a
/// positive sum.
[[nodiscard]] BinnedPdf mixture_average(std::span<const BinnedPdf> pdfs,
                                        std::span<const double> weights);

/// A curve of per-bin weighted mean values: v(d) as in the paper, where d is
/// the binned coordinate (log10 duration) and the value is the mean session
/// volume observed in that bin.
class BinnedMeanCurve {
 public:
  explicit BinnedMeanCurve(Axis axis)
      : axis_(axis), sum_(axis.bins(), 0.0), weight_(axis.bins(), 0.0) {}

  [[nodiscard]] const Axis& axis() const noexcept { return axis_; }

  /// Adds one (coordinate, value) observation with the given weight.
  void add(double coord, double value, double weight = 1.0) noexcept {
    const std::size_t i = axis_.index_clamped(coord);
    sum_[i] += value * weight;
    weight_[i] += weight;
  }

  /// Weighted mean value of bin i; 0 for empty bins.
  [[nodiscard]] double value(std::size_t i) const noexcept {
    return weight_[i] > 0.0 ? sum_[i] / weight_[i] : 0.0;
  }
  [[nodiscard]] double weight(std::size_t i) const noexcept {
    return weight_[i];
  }
  [[nodiscard]] std::size_t size() const noexcept { return sum_.size(); }

  /// Weighted accumulation per Eq. (1): merges another curve with an overall
  /// weight factor. Same axis required.
  void accumulate(const BinnedMeanCurve& other, double weight);

  /// Extracts the non-empty (coordinate, value, weight) triples.
  struct Point {
    double coord;
    double value;
    double weight;
  };
  [[nodiscard]] std::vector<Point> points() const;

 private:
  Axis axis_;
  std::vector<double> sum_;
  std::vector<double> weight_;
};

/// Weighted average of mean curves per Eq. (1).
[[nodiscard]] BinnedMeanCurve weighted_average(
    std::span<const BinnedMeanCurve> curves, std::span<const double> weights);

}  // namespace mtd
