#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace mtd {

std::size_t Axis::index_clamped(double u) const noexcept {
  if (u <= lo_) return 0;
  const auto i = static_cast<std::size_t>((u - lo_) / width());
  return std::min(i, bins_ - 1);
}

BinnedPdf BinnedPdf::from_samples(const Axis& axis,
                                  std::span<const double> coords) {
  BinnedPdf pdf(axis);
  for (double u : coords) pdf.add(u);
  pdf.normalize();
  return pdf;
}

double BinnedPdf::integral() const noexcept {
  double s = 0.0;
  for (double d : density_) s += d;
  return s * axis_.width();
}

void BinnedPdf::normalize() noexcept {
  const double total = integral();
  if (total <= 0.0) return;
  for (double& d : density_) d /= total;
}

double BinnedPdf::mean() const noexcept {
  double m = 0.0, w = 0.0;
  for (std::size_t i = 0; i < density_.size(); ++i) {
    m += axis_.center(i) * density_[i];
    w += density_[i];
  }
  return w > 0.0 ? m / w : 0.0;
}

double BinnedPdf::stddev() const noexcept {
  const double mu = mean();
  double s = 0.0, w = 0.0;
  for (std::size_t i = 0; i < density_.size(); ++i) {
    const double d = axis_.center(i) - mu;
    s += d * d * density_[i];
    w += density_[i];
  }
  return w > 0.0 ? std::sqrt(s / w) : 0.0;
}

BinnedPdf BinnedPdf::centered() const {
  const double mu = mean();
  // Shift by an integer number of bins (nearest); sub-bin remainders are
  // negligible at the grid resolutions used by the analyses.
  const auto shift = static_cast<long>(std::lround(mu / axis_.width()));
  BinnedPdf out(axis_);
  const auto n = static_cast<long>(density_.size());
  for (long i = 0; i < n; ++i) {
    long j = i - shift;
    j = std::clamp(j, 0L, n - 1);
    out.density_[static_cast<std::size_t>(j)] +=
        density_[static_cast<std::size_t>(i)];
  }
  return out;
}

std::vector<double> BinnedPdf::cdf() const {
  std::vector<double> out(density_.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < density_.size(); ++i) {
    acc += density_[i] * axis_.width();
    out[i] = acc;
  }
  return out;
}

double BinnedPdf::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "BinnedPdf::quantile: q outside [0,1]");
  const double total = integral();
  require(total > 0.0, "BinnedPdf::quantile: empty PDF");
  const double target = q * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < density_.size(); ++i) {
    const double binmass = density_[i] * axis_.width();
    if (acc + binmass >= target) {
      const double frac = binmass > 0.0 ? (target - acc) / binmass : 0.0;
      return axis_.edge(i) + frac * axis_.width();
    }
    acc += binmass;
  }
  return axis_.hi();
}

void BinnedPdf::accumulate(const BinnedPdf& other, double weight) {
  require(axis_ == other.axis_, "BinnedPdf::accumulate: axis mismatch");
  require(weight >= 0.0, "BinnedPdf::accumulate: negative weight");
  for (std::size_t i = 0; i < density_.size(); ++i) {
    density_[i] += weight * other.density_[i];
  }
}

std::size_t BinnedPdf::argmax() const noexcept {
  return static_cast<std::size_t>(
      std::max_element(density_.begin(), density_.end()) - density_.begin());
}

BinnedPdf mixture_average(std::span<const BinnedPdf> pdfs,
                          std::span<const double> weights) {
  require(!pdfs.empty(), "mixture_average: no PDFs");
  require(pdfs.size() == weights.size(), "mixture_average: size mismatch");
  BinnedPdf out(pdfs.front().axis());
  double total = 0.0;
  for (std::size_t i = 0; i < pdfs.size(); ++i) {
    out.accumulate(pdfs[i], weights[i]);
    total += weights[i];
  }
  require(total > 0.0, "mixture_average: zero total weight");
  out.normalize();
  return out;
}

void BinnedMeanCurve::accumulate(const BinnedMeanCurve& other, double weight) {
  require(axis_ == other.axis_, "BinnedMeanCurve::accumulate: axis mismatch");
  require(weight >= 0.0, "BinnedMeanCurve::accumulate: negative weight");
  for (std::size_t i = 0; i < sum_.size(); ++i) {
    sum_[i] += weight * other.sum_[i];
    weight_[i] += weight * other.weight_[i];
  }
}

std::vector<BinnedMeanCurve::Point> BinnedMeanCurve::points() const {
  std::vector<Point> out;
  out.reserve(sum_.size());
  for (std::size_t i = 0; i < sum_.size(); ++i) {
    if (weight_[i] > 0.0) {
      out.push_back(Point{axis_.center(i), value(i), weight_[i]});
    }
  }
  return out;
}

BinnedMeanCurve weighted_average(std::span<const BinnedMeanCurve> curves,
                                 std::span<const double> weights) {
  require(!curves.empty(), "weighted_average: no curves");
  require(curves.size() == weights.size(), "weighted_average: size mismatch");
  BinnedMeanCurve out(curves.front().axis());
  for (std::size_t i = 0; i < curves.size(); ++i) {
    out.accumulate(curves[i], weights[i]);
  }
  return out;
}

}  // namespace mtd
