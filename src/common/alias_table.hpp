// Walker alias table: O(1) sampling from a fixed discrete distribution.
//
// The replay hot path draws one service per session (Table 1 shares) and
// one mixture component per volume draw (Eq. 5). A binary search over the
// CDF costs O(log n) data-dependent branches per draw; the alias method
// (Walker 1977, Vose 1991) converts the same weights once into two flat
// n-entry tables and answers every draw with one multiply, one floor and
// one compare.
//
// Draw discipline: sample() consumes exactly ONE Rng::uniform() — the same
// count as the CDF inversion it replaces — by splitting the draw into its
// integer part (the bucket) and fractional part (the accept/alias coin).
// For u uniform on [0, 1), floor(n u) and frac(n u) are independent and
// uniform, so the method stays exact. Construction is deterministic: the
// Vose worklists are processed in ascending index order, so the same
// weights always yield byte-identical tables on every platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace mtd {

/// Precomputed alias tables over a fixed weight vector; immutable once
/// built. Weights must be non-negative, finite, with a positive total;
/// zero-weight outcomes are representable and are never drawn.
class AliasTable {
 public:
  /// An empty table; sample() must not be called until assigned from a
  /// weighted constructor (supports deferred init in deserializers).
  AliasTable() = default;

  /// Builds the tables from (unnormalized) weights via Vose's algorithm.
  /// Throws InvalidArgument on an empty span, a negative or non-finite
  /// weight, or a zero total.
  explicit AliasTable(std::span<const double> weights);

  [[nodiscard]] std::size_t size() const noexcept { return buckets_.size(); }
  [[nodiscard]] bool empty() const noexcept { return buckets_.empty(); }

  /// O(1) draw consuming exactly one rng.uniform().
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept {
    return pick(rng.uniform());
  }

  /// Batched draw over precomputed uniforms (SoA batch kernels): out[i] =
  /// pick(u[i]). One tight loop over the interleaved bucket array — the
  /// per-call table pointer and scale stay in registers, which is where
  /// the win over repeated sample() calls comes from.
  void sample_block(const double* u, std::uint32_t* out,
                    std::size_t n) const noexcept {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::uint32_t>(pick(u[i]));
    }
  }

  /// The deterministic outcome for a given u in [0, 1). Exposed so tests
  /// can enumerate the mapping and so callers that already hold a uniform
  /// deviate can reuse it.
  [[nodiscard]] std::size_t pick(double u) const noexcept {
    // scale_ caches n as a double: no size recomputation or int-to-double
    // conversion per draw, and threshold + alias sit in one Bucket so a
    // draw touches a single cache line of table data.
    const double x = u * scale_;
    std::size_t bucket = static_cast<std::size_t>(x);
    // u is < 1 but x can round up to n at the last representable double.
    if (bucket >= static_cast<std::size_t>(scale_)) {
      bucket = static_cast<std::size_t>(scale_) - 1;
    }
    const Bucket& b = buckets_[bucket];
    return x - static_cast<double>(bucket) < b.prob ? bucket : b.alias;
  }

  /// Reconstructs the exact probability mass the table assigns to outcome
  /// `i` (sum of its own column retention plus every column aliasing to
  /// it, each divided by n). Used by goodness-of-fit tests to prove the
  /// construction preserved the input distribution.
  [[nodiscard]] double outcome_probability(std::size_t i) const;

  /// Per-bucket acceptance thresholds and alias targets, unpacked from the
  /// interleaved layout (test introspection).
  [[nodiscard]] std::vector<double> bucket_probabilities() const;
  [[nodiscard]] std::vector<std::uint32_t> bucket_aliases() const;

 private:
  struct Bucket {
    double prob;          // acceptance threshold
    std::uint32_t alias;  // fallback outcome
  };

  std::vector<Bucket> buckets_;
  double scale_ = 0.0;  // buckets_.size() as a double (exact for n < 2^53)
};

}  // namespace mtd
