#include "common/alias_table.hpp"

#include <cmath>

#include "common/error.hpp"

namespace mtd {

AliasTable::AliasTable(std::span<const double> weights) {
  require(!weights.empty(), "AliasTable: no weights");
  double total = 0.0;
  for (const double w : weights) {
    require(std::isfinite(w) && w >= 0.0,
            "AliasTable: weights must be finite and non-negative");
    total += w;
  }
  require(total > 0.0, "AliasTable: zero total weight");

  const std::size_t n = weights.size();
  buckets_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    buckets_[i] = Bucket{1.0, static_cast<std::uint32_t>(i)};
  }
  scale_ = static_cast<double>(n);

  // Vose's worklist construction over scaled weights p_i = w_i * n / total:
  // every underfull bucket (p < 1) is topped up by exactly one overfull
  // outcome, whose surplus shrinks and is re-queued. Both worklists are
  // filled and drained in ascending index order, so construction is
  // deterministic for a given weight vector.
  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total;
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * scale;

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  // Drain from the front to keep index order; positions, not pop_back.
  std::size_t small_head = 0;
  std::size_t large_head = 0;
  while (small_head < small.size() && large_head < large.size()) {
    const std::uint32_t s = small[small_head++];
    const std::uint32_t l = large[large_head];
    buckets_[s] = Bucket{scaled[s], l};
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      // The donor dropped below 1: it becomes a small bucket itself.
      ++large_head;
      small.push_back(l);
    }
  }
  // Leftovers on either list sit at (numerically) exactly 1.
  while (large_head < large.size()) buckets_[large[large_head++]].prob = 1.0;
  while (small_head < small.size()) buckets_[small[small_head++]].prob = 1.0;
}

double AliasTable::outcome_probability(std::size_t i) const {
  require(i < buckets_.size(), "AliasTable: outcome index out of range");
  double mass = buckets_[i].prob;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b].alias == i && b != i) mass += 1.0 - buckets_[b].prob;
  }
  return mass / static_cast<double>(buckets_.size());
}

std::vector<double> AliasTable::bucket_probabilities() const {
  std::vector<double> probs(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    probs[i] = buckets_[i].prob;
  }
  return probs;
}

std::vector<std::uint32_t> AliasTable::bucket_aliases() const {
  std::vector<std::uint32_t> aliases(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    aliases[i] = buckets_[i].alias;
  }
  return aliases;
}

}  // namespace mtd
