#include "common/rng.hpp"

#include <cmath>

namespace mtd {

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::exponential(double rate) noexcept {
  // Inversion; guard against log(0).
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::pareto(double shape, double scale) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return scale / std::pow(u, 1.0 / shape);
}

double Rng::log10_normal(double mu, double sigma) noexcept {
  return pow10_fast(normal(mu, sigma));
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the large
  // per-minute arrival counts produced by busy base stations.
  const double x = normal(mean, std::sqrt(mean));
  return x < 0.5 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

}  // namespace mtd
