// Calendar and time-of-day helpers shared by the trace generator, the
// characterization analyses and the use-case simulators.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace mtd {

inline constexpr std::size_t kMinutesPerDay = 24 * 60;
inline constexpr std::size_t kSecondsPerMinute = 60;

enum class DayType { kWorkday, kWeekend };

/// Day index within a trace (0 = Monday) to day type. The 45-day measurement
/// campaign of the paper starts on a Monday by our convention.
[[nodiscard]] constexpr DayType day_type(std::size_t day_index) noexcept {
  return (day_index % 7) >= 5 ? DayType::kWeekend : DayType::kWorkday;
}

[[nodiscard]] constexpr std::string_view to_string(DayType t) noexcept {
  return t == DayType::kWorkday ? "workday" : "weekend";
}

/// Peak hours per the slicing use case (Sec. 6.1): all day except the night
/// from 10pm to 8am.
[[nodiscard]] constexpr bool is_peak_minute(std::size_t minute_of_day) noexcept {
  const std::size_t hour = (minute_of_day / 60) % 24;
  return hour >= 8 && hour < 22;
}

/// Smooth circadian activity profile in [0, 1] used by the synthetic trace
/// generator: near-zero activity overnight, a rapid morning ramp, a broad
/// daytime plateau with a mild evening peak, and a rapid night fall. The
/// fast transitions reproduce the bi-modality of per-minute arrival counts
/// reported in Fig. 3 of the paper (intermediate rates are rare).
[[nodiscard]] double circadian_activity(std::size_t minute_of_day) noexcept;

/// Fraction of the day spent in the "high" phase of the circadian profile
/// (activity above 0.5); used by tests and by the arrival-model fitting.
[[nodiscard]] double circadian_high_fraction() noexcept;

/// Activity threshold separating the day and night circadian phases.
inline constexpr double kCircadianDayThreshold = 0.5;

/// Per-minute tables of the circadian profile, precomputed once: the
/// activity value and the day-phase predicate (activity > 0.5) for every
/// minute of the day. The arrival hot path evaluates the profile once per
/// (BS, minute); the logistic ramps and the Gaussian evening bump cost
/// three exp calls each time, so per-minute generation reads these tables
/// instead. Values are computed by circadian_activity itself, so table
/// lookups are bit-identical to direct evaluation.
struct CircadianTables {
  std::array<double, kMinutesPerDay> activity;
  std::array<bool, kMinutesPerDay> day_phase;
};

/// The process-wide precomputed tables (built on first use, immutable).
[[nodiscard]] const CircadianTables& circadian_tables() noexcept;

/// Table-backed circadian_activity; bit-identical to the direct call.
[[nodiscard]] inline double circadian_activity_lut(
    std::size_t minute_of_day) noexcept {
  return circadian_tables().activity[minute_of_day % kMinutesPerDay];
}

/// Table-backed day-phase predicate (activity > kCircadianDayThreshold).
[[nodiscard]] inline bool circadian_day_phase(
    std::size_t minute_of_day) noexcept {
  return circadian_tables().day_phase[minute_of_day % kMinutesPerDay];
}

}  // namespace mtd
