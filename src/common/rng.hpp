// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of the library draw from mtd::Rng so that every
// experiment is reproducible from a single 64-bit seed.  The generator is
// xoshiro256** (Blackman & Vigna), seeded through SplitMix64; both are public
// domain algorithms with excellent statistical quality and trivial state.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <cstddef>

namespace mtd {

/// 10^x via exp2(x * log2(10)). One exp2 (which libm dispatches to its
/// fastest exponential kernel) instead of the general-power path of
/// pow(10, x); accurate to ~2 ulp, which is far below the sampling noise
/// of any stochastic draw this library makes. All hot-path base-10
/// exponentiations (log-normal volume draws, duration jitter) route
/// through here so they speed up — and stay bit-identical to each other —
/// together.
[[nodiscard]] inline double pow10_fast(double x) noexcept {
  // log2(10) to full double precision.
  constexpr double kLog2Of10 = 3.321928094887362347870319429489390175865;
  return std::exp2(x * kLog2Of10);
}

/// SplitMix64: used to expand a 64-bit seed into generator state and as a
/// cheap standalone generator for stream splitting.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** pseudo-random generator with distribution helpers.
///
/// Satisfies the UniformRandomBitGenerator named requirement, so it can also
/// be plugged into <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x6d7464u /* "mtd" */) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    // 53 random mantissa bits.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n); n must be positive.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t t = (~n + 1) % n;
      while (lo < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal deviate (Marsaglia polar method, cached spare).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential deviate with the given rate (lambda > 0).
  double exponential(double rate) noexcept;

  /// Pareto (type I) deviate: support [scale, inf), shape > 0.
  double pareto(double shape, double scale) noexcept;

  /// Log-normal deviate in base 10: 10^N(mu, sigma).
  double log10_normal(double mu, double sigma) noexcept;

  /// Poisson deviate (Knuth for small mean, PTRS-style normal approx refined
  /// by inversion is unnecessary here; we use Knuth + normal fallback).
  std::uint64_t poisson(double mean) noexcept;

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derives an independent child generator; stable given (seed, stream id).
  Rng split(std::uint64_t stream) noexcept {
    SplitMix64 sm(state_[0] ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
    return Rng(sm.next());
  }

  /// The full 256-bit generator state. Together with set_state this allows
  /// suspending and resuming a stream bit-identically (engine checkpoints).
  /// The cached spare normal deviate is intentionally not part of the state:
  /// capture/restore only at points where no spare is pending (any state
  /// taken before the first normal() call, or via a fresh copy). Mid-stream
  /// suspension of a generator that draws normals needs full_state().
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return state_;
  }

  /// Restores a state previously obtained from state(); drops any cached
  /// spare normal deviate.
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    state_ = state;
    has_spare_ = false;
    spare_normal_ = 0.0;
  }

  /// Everything a bit-identical mid-stream suspend needs: the xoshiro words
  /// plus the Marsaglia-polar spare that normal() may have cached (the polar
  /// method produces deviates in pairs; dropping a pending spare would shift
  /// every later normal draw by one). The minute-granularity engine
  /// checkpoints serialize this per (BS, stream).
  struct FullState {
    std::array<std::uint64_t, 4> words{};
    bool has_spare = false;
    double spare = 0.0;

    friend constexpr bool operator==(const FullState&,
                                     const FullState&) noexcept = default;
  };

  [[nodiscard]] FullState full_state() const noexcept {
    return FullState{state_, has_spare_, spare_normal_};
  }

  /// Restores a state previously obtained from full_state(); the next
  /// normal() call returns the restored spare if one was pending.
  void set_full_state(const FullState& state) noexcept {
    state_ = state.words;
    has_spare_ = state.has_spare;
    spare_normal_ = state.spare;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace mtd
