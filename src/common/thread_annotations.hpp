// Portable Clang Thread Safety Analysis annotations.
//
// The streaming engine's correctness contract — bit-identical aggregates
// under any worker count and any fault schedule — rests on lock discipline
// that runtime sanitizers only validate for the interleavings a test
// happens to hit. These macros express that discipline in the type system
// so `clang -Wthread-safety` (enabled by the MTD_ANALYZE CMake option)
// proves it for every build. Under compilers without the attribute
// (GCC) they expand to nothing and cost nothing.
//
// Conventions (see DESIGN.md section 9):
//  - Every mutex-guarded member is declared with MTD_GUARDED_BY(mutex_).
//  - Functions that must be called with a capability held use
//    MTD_REQUIRES(mutex_); functions that take the lock themselves use
//    MTD_EXCLUDES(mutex_) so re-entrant locking is a compile error.
//  - Raw std::mutex cannot participate in the analysis (libstdc++ ships no
//    annotations), so engine code uses mtd::Mutex / mtd::MutexLock from
//    common/mutex.hpp instead.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define MTD_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MTD_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability (a lockable resource).
#define MTD_CAPABILITY(x) MTD_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define MTD_SCOPED_CAPABILITY MTD_THREAD_ANNOTATION_(scoped_lockable)

/// A data member readable/writable only while holding the capability.
#define MTD_GUARDED_BY(x) MTD_THREAD_ANNOTATION_(guarded_by(x))

/// A pointer member whose pointee is guarded by the capability.
#define MTD_PT_GUARDED_BY(x) MTD_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function must be called with the capabilities held.
#define MTD_REQUIRES(...) \
  MTD_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The function must be called with the capabilities held in shared mode.
#define MTD_REQUIRES_SHARED(...) \
  MTD_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capabilities and does not release them.
#define MTD_ACQUIRE(...) \
  MTD_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases the capabilities.
#define MTD_RELEASE(...) \
  MTD_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `ret`.
#define MTD_TRY_ACQUIRE(ret, ...) \
  MTD_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// The function must be called with the capabilities NOT held (deadlock
/// guard: it will acquire them itself).
#define MTD_EXCLUDES(...) MTD_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Lock-ordering declaration between capabilities.
#define MTD_ACQUIRED_BEFORE(...) \
  MTD_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define MTD_ACQUIRED_AFTER(...) \
  MTD_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define MTD_RETURN_CAPABILITY(x) MTD_THREAD_ANNOTATION_(lock_returned(x))

/// Opt-out for code the analysis cannot model (use sparingly; justify in a
/// comment at the call site).
#define MTD_NO_THREAD_SAFETY_ANALYSIS \
  MTD_THREAD_ANNOTATION_(no_thread_safety_analysis)
