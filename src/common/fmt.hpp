// Allocation-free number formatting and byte storing for the
// serialization hot paths.
//
// The event sinks format millions of numbers per run. Both text encodings
// in use predate this header — CSV doubles were written by ofstream's
// default operator<< (printf %g semantics, 6 significant digits) and JSON
// numbers by mtd::Json's serializer (integral values as %.0f, everything
// else as %.17g). The appenders here reproduce those encodings
// byte-for-byte with std::to_chars into caller-owned buffers, so sinks can
// drop per-event iostream/Json round trips without changing a single
// output byte (tests/test_serialization_golden.cpp holds the equivalence
// proof). The little-endian stores back the binary encodings (the
// length-prefixed event log and the trace store pages), which fix
// little-endian byte order regardless of host.
#pragma once

#include <bit>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>

namespace mtd {

/// Appends an unsigned integer in decimal.
inline void append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, ptr);
}

/// Appends a double exactly as ostream's default formatting does
/// (std::defaultfloat, precision 6 — printf %g semantics).
inline void append_double_g6(std::string& out, double v) {
  char buf[40];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::general, 6);
  out.append(buf, ptr);
}

/// Appends a double exactly as mtd::Json's serializer does: integral
/// values below 1e15 in magnitude print without a decimal point or
/// exponent (printf %.0f, including the "-0" of negative zero), everything
/// else as printf %.17g (lossless for IEEE-754 doubles).
inline void append_json_number(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    if (std::signbit(d)) out += '-';
    append_uint(out, static_cast<std::uint64_t>(std::abs(d)));
    return;
  }
  char buf[40];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, d, std::chars_format::general, 17);
  out.append(buf, ptr);
}

/// Stores an unsigned integer little-endian at `p` and returns the advanced
/// pointer. On little-endian hosts this is a single memcpy the compiler
/// folds into one unaligned store.
template <typename T>
inline char* store_le(char* p, T v) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(p, &v, sizeof v);
  } else {
    for (std::size_t i = 0; i < sizeof v; ++i) {
      p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
  }
  return p + sizeof v;
}

/// Stores a double as the little-endian bytes of its IEEE-754 bit pattern.
inline char* store_f64_le(char* p, double v) {
  return store_le(p, std::bit_cast<std::uint64_t>(v));
}

}  // namespace mtd
