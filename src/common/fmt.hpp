// Allocation-free number-to-text formatting for the serialization hot path.
//
// The event sinks format millions of numbers per run. Both encodings in
// use predate this header — CSV doubles were written by ofstream's default
// operator<< (printf %g semantics, 6 significant digits) and JSON numbers
// by mtd::Json's serializer (integral values as %.0f, everything else as
// %.17g). The appenders here reproduce those encodings byte-for-byte with
// std::to_chars into caller-owned buffers, so sinks can drop per-event
// iostream/Json round trips without changing a single output byte
// (tests/test_serialization_golden.cpp holds the equivalence proof).
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>

namespace mtd {

/// Appends an unsigned integer in decimal.
inline void append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, ptr);
}

/// Appends a double exactly as ostream's default formatting does
/// (std::defaultfloat, precision 6 — printf %g semantics).
inline void append_double_g6(std::string& out, double v) {
  char buf[40];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::general, 6);
  out.append(buf, ptr);
}

/// Appends a double exactly as mtd::Json's serializer does: integral
/// values below 1e15 in magnitude print without a decimal point or
/// exponent (printf %.0f, including the "-0" of negative zero), everything
/// else as printf %.17g (lossless for IEEE-754 doubles).
inline void append_json_number(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    if (std::signbit(d)) out += '-';
    append_uint(out, static_cast<std::uint64_t>(std::abs(d)));
    return;
  }
  char buf[40];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, d, std::chars_format::general, 17);
  out.append(buf, ptr);
}

}  // namespace mtd
