// Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex carries no capability annotations, so code locking
// it directly is invisible to -Wthread-safety. mtd::Mutex is a zero-cost
// std::mutex wrapper declared as a capability, mtd::MutexLock is the
// annotated lock_guard equivalent, and mtd::ConditionVariable waits
// directly on a held Mutex; together they let the analysis prove that
// every MTD_GUARDED_BY member is only touched under its lock. All
// concurrent code uses these instead of the raw std primitives — the
// mtd-lint raw-mutex rule bans std::mutex/std::lock_guard/
// std::condition_variable everywhere outside this file.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace mtd {

/// A std::mutex the thread-safety analysis can reason about.
class MTD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MTD_ACQUIRE() { mutex_.lock(); }
  void unlock() MTD_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() MTD_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

  /// Escape hatch for APIs that require a std::mutex (condition variables).
  /// Accesses through it are outside the analysis.
  [[nodiscard]] std::mutex& native() noexcept { return mutex_; }

 private:
  std::mutex mutex_;
};

/// RAII lock with scope-level capability tracking (std::lock_guard shape:
/// no unlock before destruction, not movable).
class MTD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MTD_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() MTD_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable that waits on an mtd::Mutex held via MutexLock.
/// Built on std::condition_variable_any (Mutex satisfies BasicLockable).
/// wait() releases and re-acquires the mutex internally, which the static
/// analysis cannot track; the MTD_REQUIRES contract states the caller-side
/// invariant (held before and after), and the body opts out of analysis.
class ConditionVariable {
 public:
  ConditionVariable() = default;
  ConditionVariable(const ConditionVariable&) = delete;
  ConditionVariable& operator=(const ConditionVariable&) = delete;

  /// Blocks until `predicate` holds; `mutex` must be held by the caller
  /// (it is released while waiting and re-held when this returns).
  template <typename Predicate>
  void wait(Mutex& mutex, Predicate predicate) MTD_REQUIRES(mutex)
      MTD_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mutex, std::move(predicate));
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace mtd
