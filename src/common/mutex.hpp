// Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex carries no capability annotations, so code locking
// it directly is invisible to -Wthread-safety. mtd::Mutex is a zero-cost
// std::mutex wrapper declared as a capability, and mtd::MutexLock is the
// annotated lock_guard equivalent; together they let the analysis prove
// that every MTD_GUARDED_BY member is only touched under its lock. All
// concurrent engine code uses these instead of std::mutex/std::lock_guard.
#pragma once

#include <mutex>

#include "common/thread_annotations.hpp"

namespace mtd {

/// A std::mutex the thread-safety analysis can reason about.
class MTD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MTD_ACQUIRE() { mutex_.lock(); }
  void unlock() MTD_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() MTD_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

  /// Escape hatch for APIs that require a std::mutex (condition variables).
  /// Accesses through it are outside the analysis.
  [[nodiscard]] std::mutex& native() noexcept { return mutex_; }

 private:
  std::mutex mutex_;
};

/// RAII lock with scope-level capability tracking (std::lock_guard shape:
/// no unlock before destruction, not movable).
class MTD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MTD_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() MTD_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace mtd
