#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mtd {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::skewness() const noexcept {
  if (n_ < 3 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double RunningStats::cv() const noexcept {
  return mean_ != 0.0 ? stddev() / std::abs(mean_) : 0.0;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double m2 = m2_ + other.m2_ + delta * delta * na * nb / n;
  const double m3 = m3_ + other.m3_ +
                    delta * delta * delta * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  mean_ = (na * mean_ + nb * other.mean_) / n;
  m2_ = m2;
  m3_ = m3;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double weighted_mean(std::span<const double> xs, std::span<const double> ws) {
  require(xs.size() == ws.size(), "weighted_mean: size mismatch");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    num += xs[i] * ws[i];
    den += ws[i];
  }
  return den > 0.0 ? num / den : 0.0;
}

double quantile_sorted(std::span<const double> sorted, double q) {
  require(!sorted.empty(), "quantile: empty sample");
  require(q >= 0.0 && q <= 1.0, "quantile: q outside [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

BoxplotStats boxplot_stats(std::span<const double> xs) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return BoxplotStats{
      .p5 = quantile_sorted(copy, 0.05),
      .q1 = quantile_sorted(copy, 0.25),
      .median = quantile_sorted(copy, 0.50),
      .q3 = quantile_sorted(copy, 0.75),
      .p95 = quantile_sorted(copy, 0.95),
  };
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "pearson: size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double r_squared(std::span<const double> obs, std::span<const double> fit) {
  require(obs.size() == fit.size(), "r_squared: size mismatch");
  require(!obs.empty(), "r_squared: empty sample");
  const double m = mean(obs);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < obs.size(); ++i) {
    ss_res += (obs[i] - fit[i]) * (obs[i] - fit[i]);
    ss_tot += (obs[i] - m) * (obs[i] - m);
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace mtd
