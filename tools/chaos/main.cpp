// mtd_chaos: long-horizon chaos-soak endurance driver (DESIGN.md §13).
//
// Proves the whole recovery stack — minute-granularity v2 checkpoints,
// supervised restarts, the trace store's crash-safe commit protocol, and
// the exactly-once minute commit buffer — by running the paper's 45-day
// replay twice with the same seed:
//
//   1. a clean, fault-free run into a reference store (also counting how
//      often every compiled-in fault point is reached), then
//   2. a chaos run into a second store, where every registered fault point
//      is armed from a seeded schedule, whole "process incarnations" are
//      killed with foreign exceptions mid-run, the store's page file is
//      tampered with between incarnations (garbage appended to / torn off
//      the uncommitted tail — never the committed prefix), and segment
//      compaction runs between incarnations with store.compact.* faults
//      armed (plus one guaranteed fault-free pass at the end, so the final
//      comparison always covers a compacted store).
//
// The run passes only if the chaos store ends bit-identical to the clean
// one: same final checkpoint counters, same replay digest, same per-BS
// scan digests, and both stores verify page-by-page. Every attempt's
// final telemetry must satisfy the per-kind conservation identity
// produced == consumed + dropped + sink_errors + discarded.
//
// Usage: mtd_chaos [--days N] [--bs N] [--workers N] [--seed S]
//                  [--interval MIN] [--faults all|none] [--fault-seed S]
//                  [--incarnations K] [--max-restarts R] [--rate-scale X]
//                  [--kinds replay|segments|all] [--dir PATH] [--keep]
//                  [--json] [--list-fault-points]
// Env: MTD_SOAK_FAST=1 shrinks the horizon to a CI-sized smoke (~2 days).
// Exit codes: 0 identical, 1 divergence/failure, 2 usage error.
#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "engine/checkpoint.hpp"
#include "engine/engine.hpp"
#include "engine/store_runner.hpp"
#include "engine/telemetry.hpp"
#include "events/event_codec.hpp"
#include "io/json.hpp"
#include "store/trace_store.hpp"

namespace {

namespace fs = std::filesystem;
using mtd::EngineCheckpoint;
using mtd::EngineConfig;
using mtd::EventKindMask;
using mtd::FaultAction;
using mtd::FaultInjector;
using mtd::FaultSpec;
using mtd::Json;
using mtd::JsonArray;
using mtd::JsonObject;
using mtd::Network;
using mtd::Rng;
using mtd::StreamEngine;
using mtd::StreamEvent;
using mtd::TelemetrySnapshot;
using mtd::TraceConfig;

struct Options {
  std::size_t days = 45;
  std::size_t num_bs = 10;
  std::size_t workers = 3;
  std::uint64_t seed = 42;
  /// Mid-day checkpoint interval; deliberately does not divide 1440, so
  /// marks land at a different minute-of-day every day.
  std::size_t interval_minutes = 173;
  bool faults = true;
  std::uint64_t fault_seed = 0x63686173ULL;  // "chas"
  std::size_t incarnations = 8;
  std::size_t max_restarts = 14;
  /// Default well below 1.0: the soak's subject is the recovery protocol,
  /// not raw throughput, and 45 days at full paper rates is a multi-GB
  /// store. --rate-scale 1.0 restores full load.
  double rate_scale = 0.2;
  std::string kinds = "segments";
  std::string dir;
  bool keep = false;
  bool json = false;
  bool list_points = false;
};

void print_usage() {
  std::fputs(
      "usage: mtd_chaos [--days N] [--bs N] [--workers N] [--seed S]\n"
      "                 [--interval MIN] [--faults all|none]\n"
      "                 [--fault-seed S] [--incarnations K]\n"
      "                 [--max-restarts R] [--rate-scale X]\n"
      "                 [--kinds replay|segments|all] [--dir PATH]\n"
      "                 [--keep] [--json] [--list-fault-points]\n"
      "\n"
      "Chaos-soak endurance driver: replays the same seeded trace clean\n"
      "and under exhaustive fault injection + simulated process kills +\n"
      "store tampering, and requires the two stores to end bit-identical.\n"
      "MTD_SOAK_FAST=1 shrinks the horizon for CI smoke runs.\n",
      stderr);
}

std::uint64_t parse_u64(std::string_view arg, const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(arg.data(), arg.data() + arg.size(), v);
  if (ec != std::errc{} || ptr != arg.data() + arg.size()) {
    throw mtd::InvalidArgument("mtd_chaos: bad " + std::string(what) + " '" +
                               std::string(arg) + "'");
  }
  return v;
}

double parse_double(std::string_view arg, const char* what) {
  const std::string s(arg);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    throw mtd::InvalidArgument("mtd_chaos: bad " + std::string(what) + " '" +
                               s + "'");
  }
  return v;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> std::string_view {
      if (i + 1 >= argc) {
        throw mtd::InvalidArgument("mtd_chaos: " + std::string(arg) +
                                   " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--days") {
      opt.days = parse_u64(value(), "--days");
    } else if (arg == "--bs") {
      opt.num_bs = parse_u64(value(), "--bs");
    } else if (arg == "--workers") {
      opt.workers = parse_u64(value(), "--workers");
    } else if (arg == "--seed") {
      opt.seed = parse_u64(value(), "--seed");
    } else if (arg == "--interval") {
      opt.interval_minutes = parse_u64(value(), "--interval");
    } else if (arg == "--faults") {
      const std::string_view v = value();
      if (v == "all") {
        opt.faults = true;
      } else if (v == "none") {
        opt.faults = false;
      } else {
        throw mtd::InvalidArgument("mtd_chaos: --faults must be all|none");
      }
    } else if (arg == "--fault-seed") {
      opt.fault_seed = parse_u64(value(), "--fault-seed");
    } else if (arg == "--incarnations") {
      opt.incarnations = parse_u64(value(), "--incarnations");
    } else if (arg == "--max-restarts") {
      opt.max_restarts = parse_u64(value(), "--max-restarts");
    } else if (arg == "--rate-scale") {
      opt.rate_scale = parse_double(value(), "--rate-scale");
    } else if (arg == "--kinds") {
      const std::string_view v = value();
      if (v != "replay" && v != "segments" && v != "all") {
        throw mtd::InvalidArgument(
            "mtd_chaos: --kinds must be replay|segments|all");
      }
      opt.kinds = std::string(v);
    } else if (arg == "--dir") {
      opt.dir = std::string(value());
    } else if (arg == "--keep") {
      opt.keep = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--list-fault-points") {
      opt.list_points = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      std::exit(0);
    } else {
      throw mtd::InvalidArgument("mtd_chaos: unknown flag '" +
                                 std::string(arg) + "'");
    }
  }
  // CI smoke profile: same machinery, minutes-not-hours horizon. Packet
  // expansion stays off — a single session can expand into millions of
  // packet events (PacketScheduleConfig::max_packets), which is throughput
  // territory, not a recovery-protocol test.
  if (const char* fast = std::getenv("MTD_SOAK_FAST");
      fast != nullptr && fast[0] != '\0' && fast != std::string_view("0")) {
    opt.days = std::min<std::size_t>(opt.days, 2);
    opt.num_bs = std::min<std::size_t>(opt.num_bs, 6);
    opt.incarnations = std::min<std::size_t>(opt.incarnations, 3);
    opt.rate_scale = std::min(opt.rate_scale, 0.25);
  }
  return opt;
}

Network make_network(std::size_t n) {
  if (n >= mtd::kNumDeciles) {
    mtd::NetworkConfig config;
    config.num_bs = n;
    config.last_decile_rate = 25.0;
    Rng rng(9);
    return Network::build(config, rng);
  }
  std::vector<mtd::BaseStation> bss(n);
  for (std::size_t i = 0; i < n; ++i) {
    bss[i].decile = static_cast<std::uint8_t>((i * mtd::kNumDeciles) / n);
    bss[i].peak_rate = 5.0 + 3.0 * static_cast<double>(i);
    bss[i].offpeak_scale = 0.25;
  }
  return Network::from_base_stations(std::move(bss));
}

EventKindMask kinds_mask(const std::string& kinds) {
  if (kinds == "replay") return EventKindMask::session_replay();
  if (kinds == "all") return EventKindMask::all();
  return EventKindMask::session_replay().set(mtd::EventKind::kSegment);
}

/// Order-sensitive FNV-1a over the canonical binary encoding of every
/// event it sees (the codec covers kind, key, and payload), so two stores
/// digest equal iff their replayed streams are bit-identical.
class DigestSink final : public mtd::EventSink {
 public:
  void on_event(const StreamEvent& event) override {
    char buf[mtd::kMaxEventPayloadBytes];
    const std::size_t len = mtd::encode_event_payload(event, buf);
    for (std::size_t i = 0; i < len; ++i) {
      hash_ ^= static_cast<unsigned char>(buf[i]);
      hash_ *= 0x100000001b3ULL;
    }
    ++count_;
  }
  [[nodiscard]] std::uint64_t hash() const noexcept { return hash_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
  std::uint64_t count_ = 0;
};

/// Everything we compare between the clean and the chaos store.
struct RunFingerprint {
  EngineCheckpoint checkpoint;
  std::uint64_t replay_hash = 0;
  std::uint64_t replay_count = 0;
  std::vector<std::uint64_t> scan_hashes;  // one per BS
  std::uint64_t verified_pages = 0;
};

RunFingerprint fingerprint_store(const std::string& path, std::size_t num_bs,
                                 std::size_t days,
                                 const EngineCheckpoint& final_checkpoint) {
  RunFingerprint fp;
  fp.checkpoint = final_checkpoint;
  mtd::store::TraceStore reader(path);
  DigestSink digest;
  fp.replay_count = reader.replay(digest);
  fp.replay_hash = digest.hash();
  const auto day_hi = static_cast<std::uint16_t>(days == 0 ? 0 : days - 1);
  for (std::size_t bs = 0; bs < num_bs; ++bs) {
    DigestSink per_bs;
    // The delivered count is redundant here: the sink folds every event
    // into the hash, so the count is already part of the fingerprint.
    static_cast<void>(
        reader.scan(static_cast<std::uint32_t>(bs), 0, day_hi,
                    [&per_bs](const StreamEvent& ev) { per_bs.on_event(ev); }));
    fp.scan_hashes.push_back(per_bs.hash());
  }
  fp.verified_pages = reader.verify().pages;
  return fp;
}

struct AttemptRecord {
  std::size_t incarnation = 0;
  std::size_t attempt = 0;
  std::uint64_t start_minute = 0;
  std::uint64_t reached_minute = 0;
  std::string error;
  bool retryable = false;
  bool conservation_ok = true;
};

struct ChaosOutcome {
  bool completed = false;
  bool conservation_ok = true;
  std::size_t incarnations = 0;
  std::size_t kills = 0;
  std::size_t tampers = 0;
  /// Compaction leg: maintenance passes over the chaos store between
  /// incarnations (plus the final fault-free pass), and how many of them
  /// the armed store.compact.* faults killed mid-publish.
  std::size_t compaction_passes = 0;
  std::size_t compaction_crashes = 0;
  std::vector<AttemptRecord> attempts;
  std::map<std::string, std::uint64_t> fired;
  EngineCheckpoint final_checkpoint;
};

EngineConfig make_engine_config(const Options& opt, FaultInjector* fault,
                                const std::string& checkpoint_path) {
  EngineConfig config;
  config.num_workers = opt.workers;
  config.event_kinds = kinds_mask(opt.kinds);
  config.checkpoint_interval_minutes = opt.interval_minutes;
  config.checkpoint_path = checkpoint_path;
  config.queue_capacity = 256;
  config.batch_size = 32;
  config.fault = fault;
  return config;
}

TraceConfig make_trace(const Options& opt) {
  TraceConfig trace;
  trace.num_days = opt.days;
  trace.seed = opt.seed;
  trace.rate_scale = opt.rate_scale;
  return trace;
}

/// Seeded tampering with the chaos store between incarnations: appends
/// garbage past the committed length, or tears bytes off the uncommitted
/// tail. The committed prefix is never touched — the point is to prove the
/// writer reclaims anything the manifest does not vouch for.
void tamper_store(const std::string& store_path, Rng& rng) {
  const mtd::store::StoreManifest manifest =
      mtd::store::StoreManifest::load(store_path);
  const std::string pages = store_path + ".pages";
  const std::uint64_t committed = manifest.committed_bytes();
  std::error_code ec;
  const std::uint64_t size = fs::file_size(pages, ec);
  if (ec || size < committed) return;  // reader will report it; not ours
  if (rng.bernoulli(0.5)) {
    // Garbage append: a torn post-crash write beyond the committed length.
    const std::size_t len = 1 + static_cast<std::size_t>(
                                    rng.uniform_index(2 * 4096));
    std::string junk(len, '\0');
    for (char& c : junk) c = static_cast<char>(rng.next_u64() & 0xff);
    std::ofstream out(pages, std::ios::binary | std::ios::app);
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  } else if (size > committed) {
    // Tear: truncate somewhere inside the uncommitted tail.
    const std::uint64_t keep =
        committed + rng.uniform_index(size - committed + 1);
    fs::resize_file(pages, keep, ec);
  }
}

/// One "process incarnation": a bounded-restart supervision loop around
/// resume_engine_into_store, reopening the store from disk on every
/// attempt exactly as a freshly exec'd process would. Returns true when
/// the replay ran to the horizon.
bool run_incarnation(const Options& opt, const Network& network,
                     const TraceConfig& trace, const std::string& store_path,
                     const std::string& checkpoint_path,
                     FaultInjector* injector, std::size_t incarnation,
                     ChaosOutcome& outcome) {
  for (std::size_t attempt = 1; attempt <= opt.max_restarts + 1; ++attempt) {
    AttemptRecord record;
    record.incarnation = incarnation;
    record.attempt = attempt;

    StreamEngine engine(network, trace,
                        make_engine_config(opt, injector, checkpoint_path));
    TelemetrySnapshot last_snapshot;
    engine.on_snapshot([&last_snapshot](const TelemetrySnapshot& snapshot) {
      last_snapshot = snapshot;
    });

    bool retry = false;
    try {
      // Fresh handles per attempt: state crosses attempts only through the
      // store files, exactly like a real crash + restart.
      auto writer = mtd::store::TraceStoreWriter::append(store_path, injector);
      const std::optional<EngineCheckpoint> stored =
          mtd::load_store_checkpoint(writer.manifest());
      record.start_minute = stored ? stored->clock_minute : 0;
      const mtd::EngineResult result =
          stored ? mtd::resume_engine_into_store(engine, *stored, writer)
                 : mtd::run_engine_into_store(engine, writer);
      writer.close();
      record.reached_minute = result.checkpoint.clock_minute;
      record.conservation_ok = result.telemetry.accounted_for();
      outcome.conservation_ok =
          outcome.conservation_ok && record.conservation_ok;
      outcome.final_checkpoint = result.checkpoint;
      outcome.attempts.push_back(std::move(record));
      return result.checkpoint.complete();
    } catch (const mtd::Error& e) {
      record.error = e.what();
      record.retryable = e.retryable();
      retry = e.retryable() && attempt <= opt.max_restarts;
    } catch (const std::exception& e) {
      // Foreign exception == the simulated process kill: this incarnation
      // is dead; the next one starts from whatever the store committed.
      record.error = e.what();
      record.retryable = false;
    }
    record.reached_minute = last_snapshot.clock_minute;
    // The engine delivers a final telemetry snapshot on failure paths too;
    // the conservation identity must hold even for aborted attempts.
    record.conservation_ok = last_snapshot.accounted_for();
    if (!record.conservation_ok) {
      std::fprintf(stderr,
                   "mtd_chaos: conservation violated (incarnation %zu "
                   "attempt %zu, %s):\n%s\n",
                   incarnation, attempt, record.error.c_str(),
                   last_snapshot.to_json().dump(2).c_str());
    }
    outcome.conservation_ok =
        outcome.conservation_ok && record.conservation_ok;
    outcome.attempts.push_back(std::move(record));
    if (!retry) return false;
  }
  return false;
}

int run_soak(const Options& opt) {
  const fs::path dir = opt.dir.empty()
                           ? fs::temp_directory_path() /
                                 ("mtd-chaos-" + std::to_string(opt.seed))
                           : fs::path(opt.dir);
  fs::create_directories(dir);
  const std::string clean_path = (dir / "clean.store").string();
  const std::string chaos_path = (dir / "chaos.store").string();
  const std::string checkpoint_path = (dir / "engine.ckpt").string();

  const Network network = make_network(opt.num_bs);
  const TraceConfig trace = make_trace(opt);

  // ---- Phase 1: clean reference run. The injector only counts hits
  // (after = kUnlimited never becomes eligible), giving the per-point hit
  // universe the chaos schedule draws fault positions from.
  FaultInjector counting(opt.fault_seed);
  for (const std::string& point : FaultInjector::known_points()) {
    counting.arm(point, FaultSpec{FaultAction::kStall, 1.0,
                                  FaultSpec::kUnlimited, 1, 0.0});
  }
  EngineCheckpoint clean_final;
  {
    auto writer = mtd::store::TraceStoreWriter::create(clean_path, {},
                                                       &counting);
    StreamEngine engine(network, trace,
                        make_engine_config(opt, &counting, ""));
    const mtd::EngineResult result = run_engine_into_store(engine, writer);
    writer.close();
    if (!result.telemetry.accounted_for()) {
      std::fprintf(stderr,
                   "mtd_chaos: clean run violates the conservation "
                   "identity\n");
      return 1;
    }
    clean_final = result.checkpoint;
  }
  const RunFingerprint clean = fingerprint_store(
      clean_path, network.size(), opt.days, clean_final);

  // ---- Phase 2: chaos run against a second store with the same seed.
  ChaosOutcome outcome;
  Rng schedule(opt.fault_seed);
  FaultInjector injector(opt.fault_seed ^ 0x6e6f6973ULL /* "nois" */);
  const std::vector<std::string>& points = FaultInjector::known_points();
  std::vector<std::string> reachable;
  for (const std::string& point : points) {
    if (counting.hits(point) > 0) reachable.push_back(point);
  }

  // Seeds the chaos store (fresh, no faults armed yet — creation is not
  // part of the protocol under test).
  mtd::store::TraceStoreWriter::create(chaos_path, {}, nullptr).close();

  const auto arm_error_faults = [&] {
    if (!opt.faults) return;
    for (const std::string& point : reachable) {
      const std::uint64_t universe = counting.hits(point);
      injector.arm(point,
                   FaultSpec{FaultAction::kError, 1.0,
                             schedule.uniform_index(universe), 1, 0.0});
    }
  };

  // Compaction leg: between incarnations the background maintenance path
  // runs against the chaos store with every store.compact.* point armed at
  // a coin-flip — roughly half the passes die mid-publish (pages, sync or
  // manifest), which must leave the previous multi-segment manifest fully
  // live for the next incarnation; the passes that land must be invisible
  // in the replayed stream. The clean reference store is never compacted,
  // so the final fingerprint comparison proves both.
  const auto compaction_leg = [&](bool with_faults) {
    if (with_faults && opt.faults) {
      for (const char* point : {"store.compact.pages", "store.compact.sync",
                                "store.compact.manifest"}) {
        injector.arm(point, FaultSpec{FaultAction::kError, 0.5, 0, 1, 0.0});
      }
    }
    ++outcome.compaction_passes;
    try {
      auto writer = mtd::store::TraceStoreWriter::append(
          chaos_path, with_faults && opt.faults ? &injector : nullptr);
      static_cast<void>(writer.compact());
      writer.close();
    } catch (const std::exception&) {
      // Died mid-compact: nothing published; the store must still open.
      ++outcome.compaction_crashes;
    }
  };

  bool completed = false;
  for (std::size_t inc = 1; !completed && inc <= opt.incarnations; ++inc) {
    ++outcome.incarnations;
    arm_error_faults();
    if (opt.faults && !reachable.empty()) {
      // One point per incarnation upgrades to a foreign exception — the
      // simulated hard kill supervision must not retry.
      const std::string& kill =
          reachable[schedule.uniform_index(reachable.size())];
      injector.arm(kill,
                   FaultSpec{FaultAction::kThrow, 1.0,
                             schedule.uniform_index(counting.hits(kill)), 1,
                             0.0});
      ++outcome.kills;
    }
    completed = run_incarnation(opt, network, trace, chaos_path,
                                checkpoint_path, opt.faults ? &injector
                                                            : nullptr,
                                inc, outcome);
    for (const std::string& point : points) {
      outcome.fired[point] += injector.fired(point);
    }
    if (!completed) {
      tamper_store(chaos_path, schedule);
      ++outcome.tampers;
      compaction_leg(/*with_faults=*/true);
    }
  }
  if (!completed) {
    // Final incarnation: retryable faults only; the run must finish now.
    ++outcome.incarnations;
    arm_error_faults();
    completed = run_incarnation(opt, network, trace, chaos_path,
                                checkpoint_path, opt.faults ? &injector
                                                            : nullptr,
                                outcome.incarnations, outcome);
    for (const std::string& point : points) {
      outcome.fired[point] += injector.fired(point);
    }
  }
  outcome.completed = completed;
  if (completed) {
    // One guaranteed fault-free pass: the fingerprint below always covers
    // a compacted chaos store against the never-compacted clean one.
    compaction_leg(/*with_faults=*/false);
  }

  // ---- Compare. Shard counters are per-attempt and legitimately differ
  // after restarts; everything cumulative must match bit-exactly.
  bool ok = completed && outcome.conservation_ok;
  std::vector<std::string> mismatches;
  if (!completed) mismatches.emplace_back("chaos run did not complete");
  if (!outcome.conservation_ok) {
    mismatches.emplace_back("conservation identity violated");
  }
  if (completed) {
    const RunFingerprint chaos = fingerprint_store(
        chaos_path, network.size(), opt.days, outcome.final_checkpoint);
    const auto check = [&](bool same, const char* what) {
      if (!same) {
        ok = false;
        mismatches.emplace_back(what);
      }
    };
    const EngineCheckpoint& a = clean.checkpoint;
    const EngineCheckpoint& b = chaos.checkpoint;
    check(a.next_day == b.next_day && a.clock_minute == b.clock_minute,
          "final cursor differs");
    check(a.sessions_emitted == b.sessions_emitted &&
              a.minutes_emitted == b.minutes_emitted &&
              a.segments_emitted == b.segments_emitted &&
              a.packets_emitted == b.packets_emitted,
          "emitted counters differ");
    check(a.volume_mb == b.volume_mb, "committed volume differs");
    check(a.network_fingerprint == b.network_fingerprint &&
              a.seed == b.seed,
          "replay identity differs");
    check(clean.replay_count == chaos.replay_count,
          "store event count differs");
    check(clean.replay_hash == chaos.replay_hash,
          "store replay digest differs");
    check(clean.scan_hashes == chaos.scan_hashes,
          "per-BS scan digests differ");
  }

  // ---- Report.
  std::uint64_t total_fired = 0;
  for (const auto& [point, fired] : outcome.fired) total_fired += fired;
  if (opt.json) {
    JsonObject report;
    report.emplace("ok", ok);
    report.emplace("completed", outcome.completed);
    report.emplace("conservation_ok", outcome.conservation_ok);
    report.emplace("days", opt.days);
    report.emplace("num_bs", opt.num_bs);
    report.emplace("seed", static_cast<double>(opt.seed));
    report.emplace("interval_minutes", opt.interval_minutes);
    report.emplace("incarnations", outcome.incarnations);
    report.emplace("kills", outcome.kills);
    report.emplace("tampers", outcome.tampers);
    report.emplace("compaction_passes", outcome.compaction_passes);
    report.emplace("compaction_crashes", outcome.compaction_crashes);
    report.emplace("attempts", outcome.attempts.size());
    report.emplace("faults_fired", static_cast<double>(total_fired));
    JsonObject fired_obj;
    for (const auto& [point, fired] : outcome.fired) {
      fired_obj.emplace(point, static_cast<double>(fired));
    }
    report.emplace("fired_by_point", Json(std::move(fired_obj)));
    JsonArray attempt_arr;
    for (const AttemptRecord& a : outcome.attempts) {
      JsonObject at;
      at.emplace("incarnation", a.incarnation);
      at.emplace("attempt", a.attempt);
      at.emplace("start_minute", static_cast<double>(a.start_minute));
      at.emplace("reached_minute", static_cast<double>(a.reached_minute));
      at.emplace("error", a.error);
      at.emplace("retryable", a.retryable);
      at.emplace("conservation_ok", a.conservation_ok);
      attempt_arr.emplace_back(std::move(at));
    }
    report.emplace("attempt_log", Json(std::move(attempt_arr)));
    JsonArray mismatch_arr;
    for (const std::string& m : mismatches) mismatch_arr.emplace_back(m);
    report.emplace("mismatches", Json(std::move(mismatch_arr)));
    std::printf("%s\n", Json(std::move(report)).dump(2).c_str());
  } else {
    std::printf("mtd_chaos: %zu simulated days, %zu BS, seed %llu\n",
                opt.days, opt.num_bs,
                static_cast<unsigned long long>(opt.seed));
    std::printf("  incarnations: %zu (%zu kills, %zu store tampers)\n",
                outcome.incarnations, outcome.kills, outcome.tampers);
    std::printf("  compactions:  %zu pass(es), %zu killed mid-publish\n",
                outcome.compaction_passes, outcome.compaction_crashes);
    std::printf("  attempts:     %zu, faults fired: %llu\n",
                outcome.attempts.size(),
                static_cast<unsigned long long>(total_fired));
    std::printf("  clean store:  %llu events, replay digest %016llx\n",
                static_cast<unsigned long long>(clean.replay_count),
                static_cast<unsigned long long>(clean.replay_hash));
    if (ok) {
      std::printf("  chaos store:  bit-identical to the clean run\n");
    } else {
      for (const std::string& m : mismatches) {
        std::printf("  FAILED: %s\n", m.c_str());
      }
    }
  }

  if (!opt.keep) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  } else {
    std::fprintf(stderr, "mtd_chaos: artifacts kept in %s\n",
                 dir.string().c_str());
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = parse_options(argc, argv);
  } catch (const mtd::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    print_usage();
    return 2;
  }
  if (opt.list_points) {
    for (const std::string& point : FaultInjector::known_points()) {
      std::printf("%s\n", point.c_str());
    }
    return 0;
  }
  try {
    return run_soak(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mtd_chaos: %s\n", e.what());
    return 2;
  }
}
