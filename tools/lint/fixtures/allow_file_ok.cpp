// Fixture: a file-wide suppression silences every hit of one rule while
// other rules keep firing. Never compiled.
// mtd-lint: allow-file(wall-clock)
#include <ctime>

long first() { return std::time(nullptr); }   // silenced by allow-file
long second() { return std::time(nullptr); }  // silenced by allow-file

int still_flagged() { return rand(); }  // line 9: banned-random still fires
