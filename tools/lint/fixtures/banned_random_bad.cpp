// Fixture: seeded-bad input for the banned-random rule. Never compiled.
#include <cstdlib>
#include <random>

int entropy_from_hardware() {
  std::random_device rd;  // line 6: banned
  return static_cast<int>(rd());
}

int libc_generator() {
  srand(42);          // line 11: banned
  return rand() % 6;  // line 12: banned
}

// A mention of std::random_device inside a comment must NOT fire, and
// neither must the string below.
const char* kDoc = "never use rand() in engine code";
