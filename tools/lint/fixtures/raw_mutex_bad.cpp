// Fixture: seeded-bad input for the raw-mutex rule. Never compiled.
#include <condition_variable>
#include <mutex>

struct RawQueue {
  std::mutex mu;                  // line 6: banned
  std::condition_variable ready;  // line 7: banned
  int depth = 0;
};

void push(RawQueue& q) {
  std::lock_guard<std::mutex> lock(q.mu);  // line 12: banned
  ++q.depth;
}

int pop(RawQueue& q) {
  std::unique_lock<std::mutex> lock(q.mu);  // line 17: banned
  q.ready.wait(lock, [&] { return q.depth > 0; });
  return --q.depth;
}

// The preprocessor include lines above never fire (the sanctioned wrapper's
// includers legitimately say `#include <mutex>`), and a suppressed use is
// sanctioned:
std::recursive_mutex legacy;  // mtd-lint: allow(raw-mutex)

// The annotated wrappers are different identifiers and must not fire:
struct Annotated {
  int value = 0;  // mtd::Mutex / mtd::MutexLock guard members elsewhere
};
