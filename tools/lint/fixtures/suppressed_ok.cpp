// Fixture: every violation below carries an inline suppression, so the
// linter must report zero findings for this file. Never compiled.
#include <cstdlib>
#include <ctime>
#include <random>

int sanctioned_entropy() {
  std::random_device rd;  // mtd-lint: allow(banned-random)
  return static_cast<int>(rd());
}

// mtd-lint: allow(wall-clock)
long sanctioned_time() { return std::time(nullptr); }

// Preceding-line form:
// mtd-lint: allow(banned-random)
int sanctioned_rand() { return rand(); }

// Multiple rules in one directive:
long both() {
  return std::time(nullptr) + rand();  // mtd-lint: allow(wall-clock, banned-random)
}

struct SeedResult {
  int value = 0;
};

[[nodiscard]] SeedResult reseed();

void fire_and_forget() {
  reseed();  // mtd-lint: allow(ignored-result)
}
