// Fixture: seeded-bad input for the include-hygiene rule. Never compiled.
// Missing #pragma once: fires at line 1.
#include <vector>
#include <string>
#include <vector>
#include "../common/error.hpp"

inline int three() { return 3; }
