// Fixture mini-tree (project_ok): serialize, load, and resume-compare
// bodies each mention every EngineCheckpoint field, so the
// checkpoint-field-coverage rule stays quiet. Never compiled.
#include "engine/checkpoint.hpp"

namespace fx {

Json EngineCheckpoint::to_json() const {
  Json obj;
  obj.emplace("seed", seed);
  obj.emplace("clock_minute", clock_minute);
  return obj;
}

EngineCheckpoint EngineCheckpoint::from_json(const Json& json) {
  EngineCheckpoint cp;
  cp.seed = json.at("seed");
  cp.clock_minute = json.at("clock_minute");
  return cp;
}

EngineResult StreamEngine::resume(const EngineCheckpoint& from) {
  if (from.seed != seed_) {
    fail("seed mismatch");
  }
  if (from.clock_minute > horizon_) {
    fail("clock_minute beyond horizon");
  }
  return run_from(from);
}

}  // namespace fx
