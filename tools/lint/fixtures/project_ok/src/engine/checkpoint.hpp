// Fixture mini-tree (project_ok): a persisted checkpoint struct whose
// every field is covered in serialize, load, and resume-compare code
// (checkpoint.cpp). The include reaches strictly down the layer DAG.
// Never compiled.
#pragma once

#include "common/base.hpp"

namespace fx {

struct EngineCheckpoint {
  unsigned long seed = 0;
  unsigned long clock_minute = 0;
};

}  // namespace fx
