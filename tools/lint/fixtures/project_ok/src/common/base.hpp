// Fixture mini-tree (project_ok): lowest-layer header, included by the
// layers above it. Never compiled.
#pragma once

namespace fx {

struct BaseIds {
  unsigned bs = 0;
  unsigned day = 0;
};

}  // namespace fx
