// Fixture mini-tree (project_ok): the event-kind enum the sink switches
// must cover. Never compiled.
#pragma once

namespace fx {

enum class EventKind : unsigned char {
  kMinute = 0,
  kSession = 1,
};

}  // namespace fx
