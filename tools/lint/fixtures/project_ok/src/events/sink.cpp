// Fixture mini-tree (project_ok): one switch handles every EventKind;
// another leans on a default that is explicitly marked lint-visible.
// Never compiled.
#include "events/event.hpp"

namespace fx {

void Sink::on_event(const Event& event) {
  switch (event.kind()) {
    case EventKind::kMinute:
      on_minute(event);
      break;
    case EventKind::kSession:
      on_session(event);
      break;
  }
}

void Sink::count(const Event& event) {
  switch (event.kind()) {
    case EventKind::kMinute:
      ++minutes_;
      break;
    default:  // mtd-lint: exhaustive-default
      ++others_;
      break;
  }
}

}  // namespace fx
