// Fixture mini-tree (project_ok): a commit path following the protocol —
// writes, then flush, then atomic manifest replace — with every
// fault_fire immediately adjacent to the I/O it guards. Never compiled.
#include "common/base.hpp"

namespace fx {

void Writer::commit() {
  fault_fire(fault_, "store.commit.pages");
  file_.write(buf_.data(), buf_.size());
  fault_fire(fault_, "store.commit.sync");
  file_.flush();
  fault_fire(fault_, "store.commit.manifest");
  write_file_atomic(manifest_path_, manifest_text_);
}

void Writer::compact() {
  fault_fire(fault_, "store.compact.pages");
  file_.write(merged_.data(), merged_.size());
  fault_fire(fault_, "store.compact.sync");
  file_.flush();
  fault_fire(fault_, "store.compact.manifest");
  write_file_atomic(manifest_path_, next_manifest_text_);
}

}  // namespace fx
