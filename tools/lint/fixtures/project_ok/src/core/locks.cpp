// Fixture mini-tree (project_ok): two call paths acquire the same pair of
// locks in the same order, so the acquisition graph stays acyclic.
// Never compiled.
#include "common/base.hpp"

namespace fx {

void Registry::update() {
  MutexLock outer(mu_table_);
  refresh_unlocked();
  {
    MutexLock inner(mu_stats_);
    stats_.bump();
  }
}

void Registry::drain() {
  MutexLock outer(mu_table_);
  MutexLock inner(mu_stats_);
  flush_unlocked();
}

}  // namespace fx
