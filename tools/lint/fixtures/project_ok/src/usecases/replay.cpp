// Fixture mini-tree (project_ok): the use-case layer reaching DOWN into
// the store layer — legal since analysis/usecases sit above store in the
// DAG (store-backed SessionSource consumers). Never compiled.
#include "events/event.hpp"
#include "store/writer.hpp"

namespace fx {

inline int replay_all() { return 0; }

}  // namespace fx
