// Fixture: representative engine-style code the linter must accept with
// zero findings. Never compiled.
#include <chrono>
#include <cstdint>
#include <map>
#include <vector>

struct DeterministicRng {
  std::uint64_t state = 0x6d7464u;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state;
  }
};

// Ordered fold: std::map iterates in key order, so the sum is stable.
double total(const std::map<std::uint32_t, double>& per_bs) {
  double sum = 0.0;
  for (const auto& [bs, volume] : per_bs) {
    sum += volume;
  }
  return sum;
}

// steady_clock for pacing is sanctioned.
double elapsed_s(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct StepResult {
  bool ok = false;
};

[[nodiscard]] StepResult step(DeterministicRng& rng);

bool drive(DeterministicRng& rng) {
  const StepResult r = step(rng);
  return r.ok;
}
