// Fixture: seeded-bad input for the missing-nodiscard rule. Never compiled.
#pragma once

struct FitResult {
  double chi2 = 0.0;
  bool converged = false;
};

struct RunReport {
  bool succeeded = false;
};

FitResult fit_everything();  // line 13: missing [[nodiscard]]

RunReport run_supervised();  // line 15: missing [[nodiscard]]

[[nodiscard]] FitResult fit_annotated();  // fine

// Attribute on its own line is also fine:
[[nodiscard]]
FitResult fit_split_attribute();

// Accessors returning references are not producers; must not fire:
struct Holder {
  FitResult& result();
  const FitResult& view() const;
};
