// Fixture: seeded-bad input for the ignored-result rule. Never compiled.
#pragma once

struct ParseResult {
  bool ok = false;
};

[[nodiscard]] ParseResult parse_all();

struct Engine {
  [[nodiscard]] ParseResult run();
};

void drops_results(Engine& engine) {
  parse_all();    // line 15: result discarded
  engine.run();   // line 16: result discarded
}

void uses_results(Engine& engine) {
  const ParseResult a = parse_all();
  if (!a.ok) return;
  auto b = engine.run();
  static_cast<void>(b);
  static_cast<void>(parse_all());  // explicit discard is acknowledged
}
