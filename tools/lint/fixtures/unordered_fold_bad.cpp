// Fixture: seeded-bad input for the unordered-fold rule. Never compiled.
// This is the bug class collect_dataset_parallel once had: floating-point
// addition is not associative, so an unspecified iteration order makes the
// fold differ run to run.
#include <cstdint>
#include <unordered_map>
#include <vector>

double total_volume(const std::unordered_map<std::uint32_t, double>& m) {
  std::unordered_map<std::uint32_t, double> per_bs = m;
  double sum = 0.0;
  for (const auto& [bs, volume] : per_bs) {  // line 12: order-sensitive fold
    sum += volume;
  }
  return sum;
}

std::vector<double> collect(
    const std::unordered_map<std::uint32_t, double>& m) {
  std::unordered_map<std::uint32_t, double> series = m;
  std::vector<double> out;
  for (const auto& kv : series) {  // line 22: push_back in unordered order
    out.push_back(kv.second);
  }
  return out;
}

// Reading without accumulating is fine (a pure lookup loop):
bool contains_zero(const std::unordered_map<std::uint32_t, double>& m) {
  std::unordered_map<std::uint32_t, double> probe = m;
  for (const auto& kv : probe) {
    if (kv.second == 0.0) return true;
  }
  return false;
}
