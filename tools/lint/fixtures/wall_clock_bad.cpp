// Fixture: seeded-bad input for the wall-clock rule. Never compiled.
#include <chrono>
#include <ctime>

double seconds_since_epoch() {
  const auto now = std::chrono::system_clock::now();  // line 6: banned
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

long unix_time() {
  return std::time(nullptr);  // line 11: banned
}

struct tm* local_now(std::time_t t) {
  return localtime(&t);  // line 15: banned
}

// steady_clock is sanctioned (pacing/telemetry only) and must not fire:
double pacing() {
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now() - t0)
      .count();
}
