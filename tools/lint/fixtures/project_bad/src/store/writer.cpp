// Fixture mini-tree (project_bad): two broken commit paths. commit()
// mutates state between a fault_fire and the write it guards; publish()
// atomically replaces the manifest before flushing the data it points at.
// Never compiled.
#include "common/util.hpp"

namespace fx {

void Writer::commit() {
  fault_fire(fault_, "store.commit.pages");
  committed_pages_ += 1;  // line 11: mutation between fire and the write
  file_.write(buf_.data(), buf_.size());
  file_.flush();
  write_file_atomic(manifest_path_, manifest_text_);
}

void Writer::publish() {
  file_.write(buf_.data(), buf_.size());
  write_file_atomic(manifest_path_, manifest_text_);
  file_.flush();  // line 20: durability barrier after the replace
}

}  // namespace fx
