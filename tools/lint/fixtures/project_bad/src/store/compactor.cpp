// Fixture mini-tree (project_bad): the store layer reaching UP into the
// use-case layer (include-layering), and a compaction path mutating state
// between a store.compact.* fault_fire and the write it guards
// (commit-protocol-order). Never compiled.
#include "usecases/replay.hpp"

namespace fx {

void Writer::compact() {
  fault_fire(fault_, "store.compact.pages");
  dead_pages_ += retired_;  // line 11: mutation between fire and the write
  file_.write(merged_.data(), merged_.size());
  fault_fire(fault_, "store.compact.sync");
  file_.flush();
  fault_fire(fault_, "store.compact.manifest");
  write_file_atomic(manifest_path_, next_manifest_text_);
}

}  // namespace fx
