// Fixture mini-tree (project_bad): clock_minute is serialized and loaded
// but never compared on resume (checkpoint.cpp) — the exact "added a
// field, forgot resume parity" hole checkpoint-field-coverage exists to
// catch. Never compiled.
#pragma once

namespace fx {

struct EngineCheckpoint {
  unsigned long seed = 0;
  unsigned long clock_minute = 0;  // line 11: missing from resume-compare
};

}  // namespace fx
