// Fixture mini-tree (project_bad): serialize and load mention every
// field, but StreamEngine::resume validates only the seed — resumes with
// an inconsistent clock would diverge silently. Never compiled.
#include "engine/checkpoint.hpp"

namespace fx {

Json EngineCheckpoint::to_json() const {
  Json obj;
  obj.emplace("seed", seed);
  obj.emplace("clock_minute", clock_minute);
  return obj;
}

EngineCheckpoint EngineCheckpoint::from_json(const Json& json) {
  EngineCheckpoint cp;
  cp.seed = json.at("seed");
  cp.clock_minute = json.at("clock_minute");
  return cp;
}

EngineResult StreamEngine::resume(const EngineCheckpoint& from) {
  if (from.seed != seed_) {
    fail("seed mismatch");
  }
  return run_from(from);
}

}  // namespace fx
