// Fixture mini-tree (project_bad): a same-rank peer include (math -> io)
// — peers may not depend on each other. Never compiled.
#pragma once

#include "io/stream.hpp"

namespace fx {

inline double scaled(double x) { return x * 2.0; }

}  // namespace fx
