// Fixture mini-tree (project_bad): half of an include cycle (a -> b -> a).
// Same-directory includes pass the layer check, so only the cycle rule
// fires here. Never compiled.
#pragma once

#include "common/b.hpp"

namespace fx {

struct A {
  int from_b = 0;
};

}  // namespace fx
