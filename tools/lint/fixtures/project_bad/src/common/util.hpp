// Fixture mini-tree (project_bad): the lowest layer reaching UP into the
// engine layer — include-layering must fire. Never compiled.
#pragma once

#include "engine/checkpoint.hpp"

namespace fx {

inline unsigned long checkpoint_seed(const EngineCheckpoint& cp) {
  return cp.seed;
}

}  // namespace fx
