// Fixture mini-tree (project_bad): the other half of the include cycle.
// Never compiled.
#pragma once

#include "common/a.hpp"

namespace fx {

struct B {
  int from_a = 0;
};

}  // namespace fx
