// Fixture mini-tree (project_bad): the reversed acquisition order that
// completes the lock-ordering cycle with locks.cpp. Never compiled.
#include "common/a.hpp"

namespace fx {

void Registry::snapshot() {
  MutexLock outer(mu_stats_);
  MutexLock inner(mu_table_);  // line 9: stats -> table
  table_.copy_into(out_);
}

}  // namespace fx
