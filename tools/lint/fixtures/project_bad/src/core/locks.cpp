// Fixture mini-tree (project_bad): acquires mu_table_ then mu_stats_;
// locks_reverse.cpp takes the same pair the other way around, closing a
// deadlock cycle. Never compiled.
#include "common/a.hpp"

namespace fx {

void Registry::update() {
  MutexLock outer(mu_table_);
  MutexLock inner(mu_stats_);  // line 10: table -> stats
  stats_.bump();
}

}  // namespace fx
