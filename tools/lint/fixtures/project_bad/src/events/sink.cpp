// Fixture mini-tree (project_bad): one switch silently drops kSession
// (no default at all); another hides it behind an unmarked default.
// Never compiled.
#include "events/event.hpp"

namespace fx {

void Sink::on_event(const Event& event) {
  switch (event.kind()) {  // line 9: kSession unhandled, no default
    case EventKind::kMinute:
      on_minute(event);
      break;
  }
}

void Sink::count(const Event& event) {
  switch (event.kind()) {
    case EventKind::kMinute:
      ++minutes_;
      break;
    default:  // line 21: default without the exhaustive-default marker
      break;
  }
}

}  // namespace fx
