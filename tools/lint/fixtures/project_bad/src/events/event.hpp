// Fixture mini-tree (project_bad): the event-kind enum. Never compiled.
#pragma once

namespace fx {

enum class EventKind : unsigned char {
  kMinute = 0,
  kSession = 1,
};

}  // namespace fx
