// Built-in rule catalog for mtd-lint.
//
// Every rule is a lexical heuristic, deliberately: the point is a
// dependency-free gate that runs in milliseconds on every commit, not a
// second compiler. Each rule documents its heuristic and its escape hatch
// (the inline allow() comment). Fixture files under tools/lint/fixtures/
// prove each rule fires on seeded-bad input (tests/test_lint_rules.cpp).
#include <array>
#include <cctype>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lex.hpp"
#include "lint/lint.hpp"

namespace mtd::lint {

namespace {

using lex::DeclHead;
using lex::find_identifier;
using lex::ident_char;
using lex::parse_decl_head;
using lex::read_qualified_identifier;
using lex::trim;

bool path_contains(const SourceFile& file,
                   std::initializer_list<std::string_view> fragments) {
  for (std::string_view frag : fragments) {
    if (file.path.find(frag) != std::string::npos) return true;
  }
  return false;
}

/// True when the (possibly ::-qualified) type name marks a must-check
/// return: *Result, RunReport, ErrorCode, Status.
bool is_must_check_type(std::string_view type) {
  const std::size_t sep = type.rfind("::");
  const std::string_view base =
      sep == std::string_view::npos ? type : type.substr(sep + 2);
  if (base.size() > 6 &&
      base.compare(base.size() - 6, 6, "Result") == 0) {
    return true;
  }
  return base == "RunReport" || base == "ErrorCode" || base == "Status";
}

/// Scans forward from `line_idx` for the first ';' or '{' that terminates
/// a declaration head. Returns ';', '{', or 0 when neither shows up within
/// a few lines (macro soup — treated as not-a-declaration).
char decl_terminator(const SourceFile& file, std::size_t line_idx) {
  const std::size_t limit = std::min(file.code.size(), line_idx + 8);
  for (std::size_t i = line_idx; i < limit; ++i) {
    for (const char c : file.code[i]) {
      if (c == ';') return ';';
      if (c == '{') return '{';
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// banned-random: nondeterministic randomness sources.
// ---------------------------------------------------------------------------

class BannedRandomRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "banned-random";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "bans std::random_device, rand()/srand() and friends: every "
           "stochastic draw must come from a seeded mtd::Rng stream "
           "(sanctioned file: src/common/rng.*)";
  }
  void check(const SourceFile& file, const ProjectModel&,
             std::vector<Finding>& out) const override {
    if (path_contains(file, {"common/rng."})) return;
    static constexpr std::array<std::string_view, 6> kBanned = {
        "random_device", "rand", "srand", "drand48",
        "random_shuffle", "mrand48",
    };
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      for (const std::string_view tok : kBanned) {
        if (find_identifier(file.code[i], tok) != std::string_view::npos) {
          out.push_back(
              {std::string(name()), file.path, i + 1,
               "nondeterministic randomness source '" + std::string(tok) +
                   "'; draw from a seeded mtd::Rng stream "
                   "(src/common/rng.hpp) so replays stay bit-identical"});
          break;  // one finding per line is enough
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// wall-clock: wall-time reads that can leak into results.
// ---------------------------------------------------------------------------

class WallClockRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "wall-clock";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "bans system_clock/time()/gettimeofday wall-clock reads: "
           "simulated time comes from the virtual clock, pacing and "
           "telemetry from steady_clock";
  }
  void check(const SourceFile& file, const ProjectModel&,
             std::vector<Finding>& out) const override {
    static constexpr std::array<std::string_view, 6> kBanned = {
        "system_clock", "gettimeofday", "clock_gettime",
        "localtime",    "gmtime",       "mktime",
    };
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      std::string_view hit;
      for (const std::string_view tok : kBanned) {
        if (find_identifier(line, tok) != std::string_view::npos) {
          hit = tok;
          break;
        }
      }
      if (hit.empty()) {
        // `time` alone only as a call: time(...) / std::time(...).
        std::size_t pos = find_identifier(line, "time");
        while (pos != std::string_view::npos) {
          std::size_t after = pos + 4;
          while (after < line.size() && line[after] == ' ') ++after;
          if (after < line.size() && line[after] == '(') {
            hit = "time";
            break;
          }
          pos = find_identifier(line, "time", pos + 1);
        }
      }
      if (!hit.empty()) {
        out.push_back(
            {std::string(name()), file.path, i + 1,
             "wall-clock read '" + std::string(hit) +
                 "'; results must not depend on wall time — use the "
                 "engine's virtual clock, or steady_clock for "
                 "pacing/telemetry only"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// raw-mutex: direct std synchronization primitives outside the annotated
// wrappers.
// ---------------------------------------------------------------------------

class RawMutexRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "raw-mutex";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "bans std::mutex/std::lock_guard/std::condition_variable and "
           "friends: concurrent code must use the annotated mtd::Mutex/"
           "MutexLock/ConditionVariable wrappers so Clang thread-safety "
           "analysis sees every lock (sanctioned file: src/common/mutex.*)";
  }
  void check(const SourceFile& file, const ProjectModel&,
             std::vector<Finding>& out) const override {
    if (path_contains(file, {"common/mutex."})) return;
    static constexpr std::array<std::string_view, 12> kBanned = {
        "mutex",           "timed_mutex",
        "recursive_mutex", "recursive_timed_mutex",
        "shared_mutex",    "shared_timed_mutex",
        "lock_guard",      "scoped_lock",
        "unique_lock",     "shared_lock",
        "condition_variable", "condition_variable_any",
    };
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      // Preprocessor lines: `#include <mutex>` in the sanctioned wrapper's
      // includers is fine; bodies are what must stay off raw primitives.
      const std::string_view trimmed = trim(line);
      if (trimmed.empty() || trimmed.front() == '#') continue;
      for (const std::string_view tok : kBanned) {
        if (find_identifier(line, tok) != std::string_view::npos) {
          out.push_back(
              {std::string(name()), file.path, i + 1,
               "raw synchronization primitive '" + std::string(tok) +
                   "'; use mtd::Mutex/MutexLock/ConditionVariable "
                   "(src/common/mutex.hpp) so the thread-safety analysis "
                   "tracks the lock"});
          break;  // one finding per line is enough
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// unordered-fold: unordered-container iteration feeding an order-sensitive
// accumulation.
// ---------------------------------------------------------------------------

class UnorderedFoldRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "unordered-fold";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "flags range-for over std::unordered_* containers whose body "
           "accumulates (+=, push_back, streaming): iteration order is "
           "unspecified, so folds must run over ordered containers or "
           "sorted copies";
  }
  void check(const SourceFile& file, const ProjectModel&,
             std::vector<Finding>& out) const override {
    // Pass 1: names declared as std::unordered_* in this file.
    std::vector<std::string> unordered_names;
    for (const std::string& line : file.code) {
      std::size_t pos = line.find("unordered_");
      while (pos != std::string::npos) {
        const std::size_t lt = line.find('<', pos);
        if (lt == std::string::npos) break;
        int depth = 0;
        std::size_t i = lt;
        for (; i < line.size(); ++i) {
          if (line[i] == '<') ++depth;
          if (line[i] == '>' && --depth == 0) break;
        }
        if (i < line.size()) {
          std::size_t p = i + 1;
          while (p < line.size() && (line[p] == ' ' || line[p] == '&')) ++p;
          const std::string_view var = read_qualified_identifier(line, p);
          if (!var.empty()) unordered_names.emplace_back(var);
        }
        pos = line.find("unordered_", lt);
      }
    }
    if (unordered_names.empty()) return;

    // Pass 2: range-for loops whose range is one of those names and whose
    // body (brace-balanced) accumulates.
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      const std::size_t for_pos = find_identifier(line, "for");
      if (for_pos == std::string_view::npos) continue;
      const std::size_t open = line.find('(', for_pos);
      const std::size_t colon = line.find(':', for_pos);
      if (open == std::string::npos || colon == std::string::npos ||
          colon < open) {
        continue;
      }
      std::size_t close = line.rfind(')');
      if (close == std::string::npos || close < colon) close = line.size();
      // substr of the reference-bound line, not a temporary: the trimmed
      // view below must outlive this statement.
      const std::string range_expr = line.substr(colon + 1, close - colon - 1);
      std::string_view range = trim(range_expr);
      while (!range.empty() && (range.front() == '*' || range.front() == '&')) {
        range.remove_prefix(1);
      }
      const std::string range_name(read_qualified_identifier(range, 0));
      bool is_unordered = false;
      for (const std::string& n : unordered_names) {
        if (range_name == n) {
          is_unordered = true;
          break;
        }
      }
      if (!is_unordered) continue;

      // Body extent: from the first '{' after the for, to its match; a
      // braceless body is the next line.
      static constexpr std::array<std::string_view, 7> kFolds = {
          "+=", "-=", "*=", "/=", "push_back", "emplace_back", "<<",
      };
      int depth = 0;
      bool saw_brace = false;
      bool fold = false;
      for (std::size_t j = i; j < file.code.size(); ++j) {
        const std::string& body = file.code[j];
        const std::string_view scan =
            j == i ? std::string_view(body).substr(close) : body;
        for (const std::string_view tok : kFolds) {
          if (scan.find(tok) != std::string_view::npos) fold = true;
        }
        for (const char c : scan) {
          if (c == '{') {
            ++depth;
            saw_brace = true;
          }
          if (c == '}') --depth;
        }
        if (saw_brace && depth <= 0) break;
        if (!saw_brace && j > i) break;  // braceless single-statement body
      }
      if (fold) {
        out.push_back(
            {std::string(name()), file.path, i + 1,
             "iteration over unordered container '" + range_name +
                 "' feeds an order-sensitive fold; iterate an ordered "
                 "container or a sorted copy so aggregates stay "
                 "bit-identical"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// missing-nodiscard: error/Result-returning declarations without
// [[nodiscard]].
// ---------------------------------------------------------------------------

class MissingNodiscardRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "missing-nodiscard";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "function declarations returning *Result/RunReport/ErrorCode/"
           "Status must be [[nodiscard]]: a silently dropped outcome is a "
           "swallowed failure";
  }
  void check(const SourceFile& file, const ProjectModel&,
             std::vector<Finding>& out) const override {
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      bool has_nodiscard = false;
      const DeclHead head = parse_decl_head(file.code[i], has_nodiscard);
      if (!head.valid || !is_must_check_type(head.type)) continue;
      // Out-of-class definitions carry the attribute on their declaration.
      if (head.name.find("::") != std::string_view::npos) continue;
      if (decl_terminator(file, i) != ';') continue;  // definition or macro
      if (!has_nodiscard && i > 0) {
        // Attribute-only previous line: "[[nodiscard]]\n Type name(...);".
        const std::string_view prev = trim(file.code[i - 1]);
        if (!prev.empty() && prev.size() >= 2 &&
            prev.compare(prev.size() - 2, 2, "]]") == 0 &&
            prev.find("nodiscard") != std::string_view::npos) {
          has_nodiscard = true;
        }
      }
      if (!has_nodiscard) {
        out.push_back({std::string(name()), file.path, i + 1,
                       "declaration of '" + std::string(head.name) +
                           "' returns " + std::string(head.type) +
                           " but is not [[nodiscard]]"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// ignored-result: bare-statement calls to must-check functions.
// ---------------------------------------------------------------------------

class IgnoredResultRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "ignored-result";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "flags expression-statement calls to functions that return "
           "*Result/RunReport/ErrorCode/Status (collected from the scanned "
           "declarations) whose value is discarded";
  }
  void check(const SourceFile& file, const ProjectModel& project,
             std::vector<Finding>& out) const override {
    if (project.must_check_functions.empty()) return;
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      const std::string_view line = trim(file.code[i]);
      if (line.size() < 4 || line.compare(line.size() - 2, 2, ");") != 0) {
        continue;
      }
      // A line continuing the previous statement (multi-line assignment
      // RHS, ternary arm) is not a bare call: skip when the nearest
      // non-blank predecessor does not end a statement, or when this line
      // opens with a ternary/initializer punctuator.
      if (line.front() == ':' || line.front() == '?') continue;
      bool continuation = false;
      for (std::size_t p = i; p > 0; --p) {
        const std::string_view prev = trim(file.code[p - 1]);
        if (prev.empty()) continue;
        const char last = prev.back();
        continuation =
            last != ';' && last != '{' && last != '}' && last != ')';
        break;
      }
      if (continuation) continue;
      // Control-flow keywords, assignments and explicit discards are fine.
      const std::string_view first = read_qualified_identifier(line, 0);
      if (first.empty()) continue;
      static constexpr std::array<std::string_view, 10> kSkip = {
          "if",     "while", "for",   "switch", "return",
          "throw",  "case",  "else",  "do",     "delete",
      };
      bool skip = false;
      for (const std::string_view kw : kSkip) skip = skip || first == kw;
      if (skip || line.find('=') != std::string_view::npos ||
          line.find("void") != std::string_view::npos) {
        continue;
      }
      // The callee is the identifier right before the first '('; the text
      // before it must be a plain object path (obj.method, ptr->method).
      const std::size_t paren = line.find('(');
      if (paren == std::string_view::npos || paren == 0) continue;
      std::size_t name_start = paren;
      while (name_start > 0 && ident_char(line[name_start - 1])) --name_start;
      const std::string callee(line.substr(name_start, paren - name_start));
      bool plain_chain = true;
      for (std::size_t p = 0; p < name_start; ++p) {
        const char c = line[p];
        if (!ident_char(c) && c != '.' && c != ':' && c != '-' && c != '>' &&
            c != ' ' && c != '(' && c != '*') {
          plain_chain = false;
          break;
        }
      }
      if (!plain_chain) continue;
      if (project.must_check_functions.count(callee) != 0 &&
          project.void_functions.count(callee) == 0) {
        out.push_back({std::string(name()), file.path, i + 1,
                       "result of '" + callee +
                           "' is discarded; bind it, check it, or discard "
                           "explicitly with static_cast<void>"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// include-hygiene: pragma once, duplicate includes, parent-relative paths.
// ---------------------------------------------------------------------------

class IncludeHygieneRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "include-hygiene";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "headers must start with #pragma once; no duplicate #include of "
           "the same file; no \"..\"-relative include paths";
  }
  void check(const SourceFile& file, const ProjectModel&,
             std::vector<Finding>& out) const override {
    bool pragma_once = false;
    std::vector<std::string> seen;
    for (std::size_t i = 0; i < file.lines.size(); ++i) {
      const std::string_view line = trim(file.lines[i]);
      if (line.rfind("#pragma", 0) == 0 &&
          line.find("once") != std::string_view::npos) {
        pragma_once = true;
      }
      if (line.rfind("#include", 0) != 0) continue;
      const std::size_t open = line.find_first_of("\"<", 8);
      if (open == std::string_view::npos) continue;
      const char close_c = line[open] == '"' ? '"' : '>';
      const std::size_t close = line.find(close_c, open + 1);
      if (close == std::string_view::npos) continue;
      const std::string target(line.substr(open + 1, close - open - 1));
      if (target.find("..") != std::string::npos) {
        out.push_back({std::string(name()), file.path, i + 1,
                       "include path '" + target +
                           "' escapes with '..'; include project headers "
                           "relative to src/"});
      }
      bool dup = false;
      for (const std::string& s : seen) dup = dup || s == target;
      if (dup) {
        out.push_back({std::string(name()), file.path, i + 1,
                       "duplicate #include of '" + target + "'"});
      } else {
        seen.push_back(target);
      }
    }
    if (!pragma_once && file.is_header()) {
      out.push_back({std::string(name()), file.path, 1,
                     "header is missing #pragma once"});
    }
  }
};

}  // namespace

void collect_must_check_functions(const SourceFile& file,
                                  std::set<std::string, std::less<>>& out) {
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    bool has_nodiscard = false;
    const DeclHead head = parse_decl_head(file.code[i], has_nodiscard);
    if (!head.valid || !is_must_check_type(head.type)) continue;
    // Both declarations and definitions contribute; qualified definition
    // names (Class::method) register their unqualified tail.
    std::string_view n = head.name;
    const std::size_t sep = n.rfind("::");
    if (sep != std::string_view::npos) n = n.substr(sep + 2);
    out.emplace(n);
  }
}

void collect_void_functions(const SourceFile& file,
                            std::set<std::string, std::less<>>& out) {
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    bool has_nodiscard = false;
    const DeclHead head = parse_decl_head(file.code[i], has_nodiscard);
    if (!head.valid || head.type != "void") continue;
    std::string_view n = head.name;
    const std::size_t sep = n.rfind("::");
    if (sep != std::string_view::npos) n = n.substr(sep + 2);
    out.emplace(n);
  }
}

void register_file_rules(RuleRegistry& registry) {
  registry.add(std::make_unique<BannedRandomRule>());
  registry.add(std::make_unique<WallClockRule>());
  registry.add(std::make_unique<RawMutexRule>());
  registry.add(std::make_unique<UnorderedFoldRule>());
  registry.add(std::make_unique<MissingNodiscardRule>());
  registry.add(std::make_unique<IgnoredResultRule>());
  registry.add(std::make_unique<IncludeHygieneRule>());
}

}  // namespace mtd::lint
