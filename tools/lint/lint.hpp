// mtd-lint: a determinism/discipline linter for this repository.
//
// The reproduction's core guarantee — bit-identical aggregates for any
// worker count, fault schedule, or stop/resume split — is easy to break
// with one innocent line: a std::random_device seed, a wall-clock read
// folded into results, an iteration over an unordered container feeding an
// order-sensitive sum (the exact bug class collect_dataset_parallel once
// had). These are correctness bugs that compile cleanly and pass tests
// until the thread schedule shifts. mtd-lint bans them at analysis time.
//
// Architecture: a two-pass analyzer. Pass 1 builds a ProjectModel
// (project_model.hpp) — include graph, struct fields, function bodies,
// fault_fire sites, EventKind switches, lock-acquisition edges — from
// every scanned SourceFile, whose comments and string/character literals
// have been blanked (so banned tokens inside strings or docs never fire).
// Pass 2 runs the rules: per-file rules override check() and see one file
// at a time; cross-file rules override check_project() and see the model,
// anchoring findings back to concrete file:line sites. Findings are
// suppressible inline either way:
//
//   foo();  // mtd-lint: allow(rule-name[, other-rule])   same line
//   // mtd-lint: allow(rule-name)                          next line
//   // mtd-lint: allow-file(rule-name)                     whole file
//
// Pre-existing findings can also be grandfathered in a committed baseline
// file (baseline.hpp) that only ever shrinks: new findings fail the gate,
// fixed ones must be removed with --update-baseline.
//
// The CLI (main.cpp) prints human-readable "path:line: [rule] message"
// lines or, with --json, a machine-readable document built with mtd::Json.
// Per-file rules live in rules.cpp, cross-file rules in cross_rules.cpp;
// DESIGN.md sections 9 and 14 document how to add one.
#pragma once

#include <cstddef>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/project_model.hpp"

namespace mtd::lint {

/// One rule violation.
struct Finding {
  std::string rule;
  std::string path;
  std::size_t line = 0;  ///< 1-based
  std::string message;
};

/// A source file prepared for lexical analysis.
struct SourceFile {
  std::string path;
  /// Raw lines, as read (suppression comments are parsed from these).
  std::vector<std::string> lines;
  /// Same lines with comments and string/char literal contents blanked to
  /// spaces; rules match against these so docs and literals cannot fire.
  std::vector<std::string> code;

  /// True when findings of `rule` at `line` (1-based) are suppressed by an
  /// allow() on the same or preceding line, or an allow-file() anywhere.
  [[nodiscard]] bool suppressed(std::string_view rule,
                                std::size_t line) const;

  [[nodiscard]] bool is_header() const;

  /// Splits `content` into lines, blanks comments/literals, and parses
  /// suppression comments. `path` is used for reporting and per-path rule
  /// sanctioning only; the file is not read from disk.
  [[nodiscard]] static SourceFile from_content(std::string path,
                                               std::string_view content);

  /// Reads `path` and delegates to from_content. Throws mtd::IoError.
  [[nodiscard]] static SourceFile from_path(const std::string& path);

  // (rule, 1-based line) pairs enabled by inline allow() comments.
  std::set<std::pair<std::string, std::size_t>> line_allows;
  // Rules disabled for the whole file by allow-file().
  std::set<std::string, std::less<>> file_allows;
};

/// A lint rule. Stateless; findings are appended to `out` unsuppressed —
/// the registry applies suppressions afterwards. Per-file rules override
/// check(); cross-file rules override check_project() (called once per
/// run, after the model is built). Either default is a no-op so a rule
/// implements only the pass it needs.
class Rule {
 public:
  virtual ~Rule() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;
  /// The suppression comment that silences this rule at one site. The
  /// default is the generic allow(); rules with a more specific mechanism
  /// (e.g. an exhaustive-default marker) override it.
  [[nodiscard]] virtual std::string escape_hatch() const;
  virtual void check(const SourceFile& file, const ProjectModel& model,
                     std::vector<Finding>& out) const;
  virtual void check_project(const ProjectModel& model,
                             std::vector<Finding>& out) const;
};

class RuleRegistry {
 public:
  void add(std::unique_ptr<Rule> rule);

  [[nodiscard]] const std::vector<std::unique_ptr<Rule>>& rules()
      const noexcept {
    return rules_;
  }

  /// Runs pass 1 (build_project_model) then every rule over every file,
  /// and returns the surviving (unsuppressed) findings, ordered by
  /// (path, line, rule). Cross-file findings are suppressed through the
  /// SourceFile they anchor to, same grammar as per-file ones.
  [[nodiscard]] std::vector<Finding> run(
      const std::vector<SourceFile>& files) const;

  /// All built-in rules: the per-file catalog (rules.cpp) followed by the
  /// cross-file catalog (cross_rules.cpp).
  [[nodiscard]] static RuleRegistry built_in();

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// Registers the per-file rules (rules.cpp). Used by built_in().
void register_file_rules(RuleRegistry& registry);
/// Registers the cross-file rules (cross_rules.cpp). Used by built_in().
void register_cross_rules(RuleRegistry& registry);

/// Collects function names whose declared return type marks them
/// must-check (types matching *Result, RunReport, ErrorCode, Status).
/// Shared by the missing-nodiscard and ignored-result rules.
void collect_must_check_functions(const SourceFile& file,
                                  std::set<std::string, std::less<>>& out);

/// Collects function names declared with a void return, used to disqualify
/// ambiguous names from the ignored-result rule.
void collect_void_functions(const SourceFile& file,
                            std::set<std::string, std::less<>>& out);

/// Machine-readable report: {"files_scanned": N, "findings": [...]}.
[[nodiscard]] std::string findings_to_json(const std::vector<Finding>& findings,
                                           std::size_t files_scanned);

/// The --list-rules text: one block per registered rule with its name,
/// one-line heuristic, and escape hatch. Factored out of main.cpp so the
/// test suite can assert the listing matches the registry.
[[nodiscard]] std::string list_rules_text(const RuleRegistry& registry);

}  // namespace mtd::lint
