// mtd-lint: a determinism/discipline linter for this repository.
//
// The reproduction's core guarantee — bit-identical aggregates for any
// worker count, fault schedule, or stop/resume split — is easy to break
// with one innocent line: a std::random_device seed, a wall-clock read
// folded into results, an iteration over an unordered container feeding an
// order-sensitive sum (the exact bug class collect_dataset_parallel once
// had). These are correctness bugs that compile cleanly and pass tests
// until the thread schedule shifts. mtd-lint bans them at analysis time.
//
// Architecture: a RuleRegistry owns Rule instances; each rule performs a
// lexical check over a SourceFile whose comments and string/character
// literals have been blanked (so banned tokens inside strings or docs never
// fire). Findings are suppressible inline:
//
//   foo();  // mtd-lint: allow(rule-name[, other-rule])   same line
//   // mtd-lint: allow(rule-name)                          next line
//   // mtd-lint: allow-file(rule-name)                     whole file
//
// The CLI (main.cpp) prints human-readable "path:line: [rule] message"
// lines or, with --json, a machine-readable document built with mtd::Json.
// Rules live in rules.cpp; DESIGN.md section 9 documents how to add one.
#pragma once

#include <cstddef>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mtd::lint {

/// One rule violation.
struct Finding {
  std::string rule;
  std::string path;
  std::size_t line = 0;  ///< 1-based
  std::string message;
};

/// A source file prepared for lexical analysis.
struct SourceFile {
  std::string path;
  /// Raw lines, as read (suppression comments are parsed from these).
  std::vector<std::string> lines;
  /// Same lines with comments and string/char literal contents blanked to
  /// spaces; rules match against these so docs and literals cannot fire.
  std::vector<std::string> code;

  /// True when findings of `rule` at `line` (1-based) are suppressed by an
  /// allow() on the same or preceding line, or an allow-file() anywhere.
  [[nodiscard]] bool suppressed(std::string_view rule,
                                std::size_t line) const;

  [[nodiscard]] bool is_header() const;

  /// Splits `content` into lines, blanks comments/literals, and parses
  /// suppression comments. `path` is used for reporting and per-path rule
  /// sanctioning only; the file is not read from disk.
  [[nodiscard]] static SourceFile from_content(std::string path,
                                               std::string_view content);

  /// Reads `path` and delegates to from_content. Throws mtd::IoError.
  [[nodiscard]] static SourceFile from_path(const std::string& path);

  // (rule, 1-based line) pairs enabled by inline allow() comments.
  std::set<std::pair<std::string, std::size_t>> line_allows;
  // Rules disabled for the whole file by allow-file().
  std::set<std::string, std::less<>> file_allows;
};

/// Cross-file facts gathered in a pre-pass before rules run (e.g. the names
/// of every function whose return value must not be ignored).
struct ProjectContext {
  std::set<std::string, std::less<>> must_check_functions;
  /// Names also declared somewhere with a void return. A name on both
  /// lists is ambiguous under lexical matching (e.g. a void run() on one
  /// class and a Result-returning run() on another), so ignored-result
  /// skips it rather than guess.
  std::set<std::string, std::less<>> void_functions;
};

/// A lint rule. Stateless; findings are appended to `out` unsuppressed —
/// the registry applies suppressions afterwards.
class Rule {
 public:
  virtual ~Rule() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;
  virtual void check(const SourceFile& file, const ProjectContext& project,
                     std::vector<Finding>& out) const = 0;
};

class RuleRegistry {
 public:
  void add(std::unique_ptr<Rule> rule);

  [[nodiscard]] const std::vector<std::unique_ptr<Rule>>& rules()
      const noexcept {
    return rules_;
  }

  /// Builds the cross-file context (pre-pass over every file).
  [[nodiscard]] ProjectContext build_context(
      const std::vector<SourceFile>& files) const;

  /// Runs every rule over every file and returns the surviving
  /// (unsuppressed) findings, ordered by (path, line, rule).
  [[nodiscard]] std::vector<Finding> run(
      const std::vector<SourceFile>& files) const;

  /// All built-in rules (see rules.cpp for the catalog).
  [[nodiscard]] static RuleRegistry built_in();

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// Collects function names whose declared return type marks them
/// must-check (types matching *Result, RunReport, ErrorCode, Status).
/// Shared by the missing-nodiscard and ignored-result rules.
void collect_must_check_functions(const SourceFile& file,
                                  std::set<std::string, std::less<>>& out);

/// Collects function names declared with a void return, used to disqualify
/// ambiguous names from the ignored-result rule.
void collect_void_functions(const SourceFile& file,
                            std::set<std::string, std::less<>>& out);

/// Machine-readable report: {"files_scanned": N, "findings": [...]}.
[[nodiscard]] std::string findings_to_json(const std::vector<Finding>& findings,
                                           std::size_t files_scanned);

}  // namespace mtd::lint
