// mtd_lint CLI. See lint.hpp for the architecture and DESIGN.md sections 9
// and 14 for the rule catalog.
//
// Usage:
//   mtd_lint [--json] [--list-rules] [--baseline FILE [--update-baseline]]
//            file...
//
// Exit codes: 0 clean, 1 violations found, 2 usage or I/O error. With a
// baseline, "violations" means fresh findings plus stale (burned-down)
// baseline entries — grandfathered findings pass but are counted.
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "io/json.hpp"
#include "lint/baseline.hpp"
#include "lint/lint.hpp"

namespace {

void print_usage() {
  std::fputs(
      "usage: mtd_lint [--json] [--list-rules]\n"
      "                [--baseline FILE [--update-baseline]] file...\n"
      "\n"
      "Determinism/discipline linter for the mtd codebase.\n"
      "  --json             machine-readable report on stdout\n"
      "  --list-rules       print the rule catalog (name, heuristic,\n"
      "                     escape hatch) and exit\n"
      "  --baseline FILE    compare findings against a committed baseline:\n"
      "                     fresh findings and stale entries fail,\n"
      "                     grandfathered ones pass\n"
      "  --update-baseline  rewrite FILE from the current findings\n"
      "\n"
      "Suppressions: // mtd-lint: allow(rule)       (same or next line)\n"
      "              // mtd-lint: allow-file(rule)  (whole file)\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool list_rules = false;
  bool update_baseline = false;
  std::string baseline_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::fputs("mtd_lint: --baseline needs a file argument\n", stderr);
        return 2;
      }
      baseline_path = argv[++i];
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "mtd_lint: unknown option '%s'\n",
                   std::string(arg).c_str());
      print_usage();
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (update_baseline && baseline_path.empty()) {
    std::fputs("mtd_lint: --update-baseline requires --baseline FILE\n",
               stderr);
    return 2;
  }

  const mtd::lint::RuleRegistry registry = mtd::lint::RuleRegistry::built_in();
  if (list_rules) {
    std::fputs(mtd::lint::list_rules_text(registry).c_str(), stdout);
    return 0;
  }
  if (paths.empty()) {
    print_usage();
    return 2;
  }

  std::vector<mtd::lint::SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    try {
      files.push_back(mtd::lint::SourceFile::from_path(path));
    } catch (const mtd::Error& e) {
      std::fprintf(stderr, "mtd_lint: %s\n", e.what());
      return 2;
    }
  }

  const std::vector<mtd::lint::Finding> findings = registry.run(files);

  if (baseline_path.empty()) {
    if (json) {
      std::printf("%s\n",
                  mtd::lint::findings_to_json(findings, files.size()).c_str());
    } else {
      for (const mtd::lint::Finding& f : findings) {
        std::printf("%s:%zu: [%s] %s\n", f.path.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
      }
      std::printf("mtd_lint: %zu file(s), %zu violation(s)\n", files.size(),
                  findings.size());
    }
    return findings.empty() ? 0 : 1;
  }

  if (update_baseline) {
    try {
      mtd::write_file_atomic(baseline_path,
                             mtd::lint::Baseline::to_text(findings));
    } catch (const mtd::Error& e) {
      std::fprintf(stderr, "mtd_lint: %s\n", e.what());
      return 2;
    }
    std::printf("mtd_lint: baseline '%s' rewritten with %zu finding(s)\n",
                baseline_path.c_str(), findings.size());
    return 0;
  }

  mtd::lint::BaselineDiff diff;
  try {
    const mtd::lint::Baseline baseline =
        mtd::lint::Baseline::from_text(mtd::read_file(baseline_path));
    diff = baseline.diff(findings);
  } catch (const mtd::Error& e) {
    std::fprintf(stderr, "mtd_lint: %s\n", e.what());
    return 2;
  }
  if (json) {
    std::printf("%s\n",
                mtd::lint::baseline_report_to_json(diff, files.size()).c_str());
  } else {
    for (const mtd::lint::Finding& f : diff.fresh) {
      std::printf("%s:%zu: [%s] %s\n", f.path.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
    }
    for (const mtd::lint::Finding& f : diff.stale) {
      std::printf(
          "%s:%zu: [%s] stale baseline entry (no longer reproduced); "
          "remove it via --update-baseline to ratchet down\n",
          f.path.c_str(), f.line, f.rule.c_str());
    }
    std::printf(
        "mtd_lint: %zu file(s), %zu fresh, %zu stale, %zu grandfathered\n",
        files.size(), diff.fresh.size(), diff.stale.size(),
        diff.grandfathered.size());
  }
  return diff.fresh.empty() && diff.stale.empty() ? 0 : 1;
}
