// mtd_lint CLI. See lint.hpp for the architecture and DESIGN.md section 9
// for the rule catalog.
//
// Usage:
//   mtd_lint [--json] [--list-rules] file...
//
// Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "lint/lint.hpp"

namespace {

void print_usage() {
  std::fputs(
      "usage: mtd_lint [--json] [--list-rules] file...\n"
      "\n"
      "Determinism/discipline linter for the mtd codebase.\n"
      "  --json        machine-readable report on stdout\n"
      "  --list-rules  print the rule catalog and exit\n"
      "\n"
      "Suppressions: // mtd-lint: allow(rule)       (same or next line)\n"
      "              // mtd-lint: allow-file(rule)  (whole file)\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool list_rules = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "mtd_lint: unknown option '%s'\n",
                   std::string(arg).c_str());
      print_usage();
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }

  const mtd::lint::RuleRegistry registry = mtd::lint::RuleRegistry::built_in();
  if (list_rules) {
    for (const auto& rule : registry.rules()) {
      std::printf("%-18s %s\n", std::string(rule->name()).c_str(),
                  std::string(rule->description()).c_str());
    }
    return 0;
  }
  if (paths.empty()) {
    print_usage();
    return 2;
  }

  std::vector<mtd::lint::SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    try {
      files.push_back(mtd::lint::SourceFile::from_path(path));
    } catch (const mtd::Error& e) {
      std::fprintf(stderr, "mtd_lint: %s\n", e.what());
      return 2;
    }
  }

  const std::vector<mtd::lint::Finding> findings = registry.run(files);
  if (json) {
    std::printf("%s\n",
                mtd::lint::findings_to_json(findings, files.size()).c_str());
  } else {
    for (const mtd::lint::Finding& f : findings) {
      std::printf("%s:%zu: [%s] %s\n", f.path.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
    }
    std::printf("mtd_lint: %zu file(s), %zu violation(s)\n", files.size(),
                findings.size());
  }
  return findings.empty() ? 0 : 1;
}
