// Baseline ratcheting for mtd-lint.
//
// A baseline is a committed list of grandfathered findings that may only
// ever shrink. The gate compares the current run against it:
//
//   fresh          finding not in the baseline            -> FAIL (new debt)
//   stale          baseline entry no longer reproduced    -> FAIL (burned
//                  down or drifted; refresh with --update-baseline so the
//                  committed file keeps matching reality)
//   grandfathered  finding present in both                -> pass (tracked)
//
// Entries match on the full (rule, path, line, message) tuple, so a
// baseline goes stale the moment the code around an entry moves — that is
// deliberate: every edit near grandfathered debt forces a conscious
// ratchet instead of silently keeping the exemption alive. The file format
// is the human-readable "path:line: [rule] message" the CLI prints, plus
// '#' comments, so diffs in review read like lint output.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/lint.hpp"

namespace mtd::lint {

struct BaselineDiff {
  std::vector<Finding> fresh;          ///< new findings, fail the gate
  std::vector<Finding> stale;          ///< baseline entries no longer seen
  std::vector<Finding> grandfathered;  ///< tracked, passing debt
};

class Baseline {
 public:
  /// Parses baseline text ("path:line: [rule] message" lines; '#' comments
  /// and blank lines ignored). Malformed entry lines throw mtd::ParseError
  /// naming the line — a typo silently dropping an entry would un-baseline
  /// it as a stale failure with no explanation.
  [[nodiscard]] static Baseline from_text(std::string_view text);

  /// Serializes the canonical committed form: a header comment plus the
  /// entries sorted by (path, line, rule).
  [[nodiscard]] static std::string to_text(std::vector<Finding> findings);

  /// Splits `findings` against the baseline.
  [[nodiscard]] BaselineDiff diff(const std::vector<Finding>& findings) const;

  [[nodiscard]] const std::vector<Finding>& entries() const noexcept {
    return entries_;
  }

 private:
  std::vector<Finding> entries_;
};

/// Machine-readable report for a baselined run: files_scanned, violations
/// (fresh + stale), the fresh findings array, and the stale/grandfathered
/// counts.
[[nodiscard]] std::string baseline_report_to_json(const BaselineDiff& diff,
                                                  std::size_t files_scanned);

}  // namespace mtd::lint
