// Pass 1 of the two-pass analyzer: the ProjectModel.
//
// mtd-lint started as a per-file lexical scanner, but the invariants the
// last PRs layered into the tree are cross-file by nature: the include DAG,
// checkpoint field parity across serialize/load/resume code, the
// append→flush→rename commit protocol, StreamEvent kind coverage in every
// sink switch, and the lock-acquisition order implied by MutexLock nesting.
// None of those are visible from one file at a time.
//
// The ProjectModel is the shared pre-pass: one walk over every scanned
// SourceFile (comment/string-blanked, same as the per-file rules see)
// extracts the facts below; pass 2 rules (cross_rules.cpp) then check
// project-wide invariants against the model and anchor their findings back
// to concrete file:line sites, where the ordinary allow() suppression
// grammar applies. Facts that describe the production tree (struct fields,
// function bodies, lock edges, kind switches) are collected only from
// paths under a src/ component, so test/bench/example code can never mask
// a gap in the real implementation — and so fixture trees under
// tools/lint/fixtures/*/src/ exercise the rules exactly like the real one.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace mtd::lint {

struct SourceFile;

/// One quoted #include in a scanned file.
struct IncludeEdge {
  std::string path;    ///< including file
  std::size_t line = 0;
  std::string target;  ///< include path as written, e.g. "engine/engine.hpp"
};

/// One data member of a struct/class collected from a src/ header.
struct StructField {
  std::string struct_name;
  std::string field;
  std::string path;
  std::size_t line = 0;  ///< 1-based line of the field declaration
};

/// One function definition body (blanked text, braces included), keyed by
/// the name as written at the definition (possibly ::-qualified).
struct FunctionBody {
  std::string name;  ///< e.g. "EngineCheckpoint::to_json" or "parse_common"
  std::string path;
  std::size_t line = 0;  ///< 1-based line of the definition head
  std::string text;      ///< blanked body text, '{' through matching '}'
};

/// One switch statement whose condition mentions an event kind and whose
/// labels are EventKind enumerators.
struct KindSwitch {
  std::string path;
  std::size_t line = 0;                ///< line of the switch statement
  std::set<std::string> cases;         ///< EventKind enumerators seen
  std::vector<std::size_t> default_lines;  ///< lines of default: labels
  std::vector<bool> default_marked;    ///< carries the exhaustive-default marker
};

/// One observed lock-acquisition order: `held` was held (MutexLock in an
/// enclosing scope, or an MTD_REQUIRES contract) when `acquired` was taken.
struct LockEdge {
  std::string held;
  std::string acquired;
  std::string path;
  std::size_t line = 0;  ///< line of the inner acquisition
};

/// One fault_fire call site and the literal point name it fires.
struct FaultSite {
  std::string point;
  std::string path;
  std::size_t line = 0;
};

/// Cross-file facts gathered in pass 1; pass 2 rules consume this instead
/// of re-scanning. Built once per RuleRegistry::run.
struct ProjectModel {
  // Include graph of every scanned file (all paths, not just src/).
  std::vector<IncludeEdge> includes;

  // Facts below are collected only from files under a src/ path component.
  std::vector<StructField> struct_fields;
  std::vector<FunctionBody> functions;
  std::vector<KindSwitch> kind_switches;
  std::vector<LockEdge> lock_edges;
  std::vector<FaultSite> fault_sites;
  /// Enumerators of `enum class EventKind`, in declaration order; empty
  /// when no scanned file declares the enum (kind rules stay inert).
  std::vector<std::string> event_kinds;
  /// Blanked code lines of every src/ file, for rules that re-scan line
  /// context around a model fact (e.g. fault-site adjacency).
  std::vector<std::pair<std::string, std::vector<std::string>>> file_code;

  // Legacy per-name facts shared by missing-nodiscard / ignored-result.
  std::set<std::string, std::less<>> must_check_functions;
  /// Names also declared somewhere with a void return. A name on both
  /// lists is ambiguous under lexical matching, so ignored-result skips it
  /// rather than guess.
  std::set<std::string, std::less<>> void_functions;

  /// All fields of `struct_name` across the scanned src/ headers.
  [[nodiscard]] std::vector<const StructField*> fields_of(
      std::string_view struct_name) const;

  /// All definition bodies whose name matches `function` exactly or as a
  /// ::-suffix (so "to_json" finds "EngineCheckpoint::to_json" and
  /// "StreamEngine::resume" matches both resume overload definitions).
  [[nodiscard]] std::vector<const FunctionBody*> bodies_of(
      std::string_view function) const;

  /// True when `path` has a "src/" component (the production tree or a
  /// fixture mini-tree).
  [[nodiscard]] static bool in_src(std::string_view path);
  /// The directory component right after "src/" ("" when none).
  [[nodiscard]] static std::string src_dir(std::string_view path);
};

/// Pass 1: builds the model from the scanned files.
[[nodiscard]] ProjectModel build_project_model(
    const std::vector<SourceFile>& files);

}  // namespace mtd::lint
