#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>

#include "io/json.hpp"

namespace mtd::lint {

namespace {

/// Blanks comments and string/character literal contents to spaces,
/// preserving line structure (newlines survive, columns stay aligned).
/// Handles //, /* */, "..." with escapes, '...' with escapes, and raw
/// string literals R"delim(...)delim".
std::string blank_comments_and_literals(std::string_view text) {
  std::string out(text);
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" terminator of a raw string
  std::size_t i = 0;
  const std::size_t n = text.size();
  auto blank = [&](std::size_t pos) {
    if (out[pos] != '\n') out[pos] = ' ';
  };
  while (i < n) {
    const char c = text[i];
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          state = State::kLineComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          state = State::kBlockComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          // R"delim( ... )delim"
          std::size_t j = i + 2;
          std::string delim;
          while (j < n && text[j] != '(' && j - i - 2 < 16) {
            delim += text[j];
            ++j;
          }
          if (j < n && text[j] == '(') {
            raw_delim = ")" + delim + "\"";
            state = State::kRawString;
            i = j + 1;
          } else {
            ++i;  // not a raw string after all
          }
        } else if (c == '"') {
          state = State::kString;
          ++i;
        } else if (c == '\'' && i > 0 &&
                   !std::isdigit(static_cast<unsigned char>(text[i - 1]))) {
          // Skip digit separators (1'000'000); everything else that starts
          // with a quote is a character literal.
          state = State::kChar;
          ++i;
        } else {
          ++i;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          blank(i);
        }
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          blank(i);
          blank(i + 1);
          state = State::kCode;
          i += 2;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::kString:
      case State::kChar: {
        const char close = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == close) {
          state = State::kCode;
          ++i;
        } else {
          blank(i);
          ++i;
        }
        break;
      }
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size();
          state = State::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      lines.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  // A trailing newline produces one empty phantom line; keep it, rules
  // never fire on empty lines.
  return lines;
}

constexpr std::string_view kMarker = "mtd-lint:";

/// Parses "allow(r1, r2)" / "allow-file(r1)" directives out of one raw
/// line; returns the rule names and whether the directive is file-scoped.
void parse_directives(const std::string& line, std::size_t line_no,
                      SourceFile& file) {
  std::size_t pos = line.find(kMarker);
  while (pos != std::string::npos) {
    std::size_t p = pos + kMarker.size();
    while (p < line.size() && line[p] == ' ') ++p;
    bool file_scope = false;
    if (line.compare(p, 11, "allow-file(") == 0) {
      file_scope = true;
      p += 11;
    } else if (line.compare(p, 6, "allow(") == 0) {
      p += 6;
    } else {
      pos = line.find(kMarker, p);
      continue;
    }
    const std::size_t close = line.find(')', p);
    if (close == std::string::npos) break;
    std::string name;
    for (std::size_t i = p; i <= close; ++i) {
      const char c = i < close ? line[i] : ',';
      if (c == ',' ) {
        // Trim the collected rule name.
        const auto b = name.find_first_not_of(" \t");
        const auto e = name.find_last_not_of(" \t");
        if (b != std::string::npos) {
          const std::string rule = name.substr(b, e - b + 1);
          if (file_scope) {
            file.file_allows.insert(rule);
          } else {
            file.line_allows.emplace(rule, line_no);
          }
        }
        name.clear();
      } else {
        name += c;
      }
    }
    pos = line.find(kMarker, close);
  }
}

}  // namespace

bool SourceFile::suppressed(std::string_view rule, std::size_t line) const {
  if (file_allows.count(rule) != 0) return true;
  const std::string key(rule);
  // An allow() on the finding's own line, or on the line above it.
  if (line_allows.count({key, line}) != 0) return true;
  return line > 1 && line_allows.count({key, line - 1}) != 0;
}

bool SourceFile::is_header() const {
  return path.size() >= 4 && (path.compare(path.size() - 4, 4, ".hpp") == 0 ||
                              path.compare(path.size() - 2, 2, ".h") == 0);
}

SourceFile SourceFile::from_content(std::string path,
                                    std::string_view content) {
  SourceFile file;
  file.path = std::move(path);
  file.lines = split_lines(content);
  file.code = split_lines(blank_comments_and_literals(content));
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    if (file.lines[i].find(kMarker) != std::string::npos) {
      parse_directives(file.lines[i], i + 1, file);
    }
  }
  return file;
}

SourceFile SourceFile::from_path(const std::string& path) {
  return from_content(path, read_file(path));
}

std::string Rule::escape_hatch() const {
  return "// mtd-lint: allow(" + std::string(name()) + ")";
}

void Rule::check(const SourceFile&, const ProjectModel&,
                 std::vector<Finding>&) const {}

void Rule::check_project(const ProjectModel&, std::vector<Finding>&) const {}

void RuleRegistry::add(std::unique_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
}

RuleRegistry RuleRegistry::built_in() {
  RuleRegistry registry;
  register_file_rules(registry);
  register_cross_rules(registry);
  return registry;
}

std::vector<Finding> RuleRegistry::run(
    const std::vector<SourceFile>& files) const {
  const ProjectModel model = build_project_model(files);
  std::vector<Finding> findings;
  auto keep_unsuppressed = [&](const SourceFile& file,
                               std::vector<Finding>& raw) {
    for (Finding& f : raw) {
      if (!file.suppressed(f.rule, f.line)) {
        findings.push_back(std::move(f));
      }
    }
  };
  for (const SourceFile& file : files) {
    std::vector<Finding> raw;
    for (const auto& rule : rules_) {
      rule->check(file, model, raw);
    }
    keep_unsuppressed(file, raw);
  }
  // Pass 2: project-level rules, once. Each finding anchors to a file:line
  // site; the ordinary allow() grammar applies through that file.
  std::vector<Finding> project_raw;
  for (const auto& rule : rules_) {
    rule->check_project(model, project_raw);
  }
  for (Finding& f : project_raw) {
    const SourceFile* anchor = nullptr;
    for (const SourceFile& file : files) {
      if (file.path == f.path) {
        anchor = &file;
        break;
      }
    }
    if (anchor == nullptr || !anchor->suppressed(f.rule, f.line)) {
      findings.push_back(std::move(f));
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::string findings_to_json(const std::vector<Finding>& findings,
                             std::size_t files_scanned) {
  JsonObject doc;
  doc.emplace("files_scanned", files_scanned);
  doc.emplace("violations", findings.size());
  JsonArray arr;
  for (const Finding& f : findings) {
    JsonObject item;
    item.emplace("rule", f.rule);
    item.emplace("path", f.path);
    item.emplace("line", f.line);
    item.emplace("message", f.message);
    arr.emplace_back(std::move(item));
  }
  doc.emplace("findings", Json(std::move(arr)));
  return Json(std::move(doc)).dump(2);
}

std::string list_rules_text(const RuleRegistry& registry) {
  std::string out;
  for (const auto& rule : registry.rules()) {
    out += rule->name();
    out += "\n  heuristic: ";
    out += rule->description();
    out += "\n  escape hatch: ";
    out += rule->escape_hatch();
    out += "\n";
  }
  return out;
}

}  // namespace mtd::lint
