#include "lint/baseline.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"
#include "io/json.hpp"
#include "lint/lex.hpp"

namespace mtd::lint {

namespace {

constexpr std::string_view kHeader =
    "# mtd-lint baseline: grandfathered findings, ratcheted down only.\n"
    "# New findings fail the gate; entries no longer reproduced fail too\n"
    "# (burned-down debt must be removed). Regenerate with:\n"
    "#   mtd_lint --baseline <this file> --update-baseline <files...>\n";

[[nodiscard]] bool same_finding(const Finding& a, const Finding& b) {
  return a.rule == b.rule && a.path == b.path && a.line == b.line &&
         a.message == b.message;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
}

}  // namespace

Baseline Baseline::from_text(std::string_view text) {
  Baseline baseline;
  std::size_t line_no = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i != text.size() && text[i] != '\n') continue;
    const std::string_view line = lex::trim(text.substr(start, i - start));
    start = i + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    // path:line: [rule] message
    const std::size_t bracket = line.find(": [");
    const std::size_t close =
        bracket == std::string_view::npos ? bracket : line.find(']', bracket);
    std::size_t colon = std::string_view::npos;
    if (bracket != std::string_view::npos) {
      colon = line.rfind(':', bracket - 1);
    }
    bool valid = close != std::string_view::npos &&
                 colon != std::string_view::npos && colon + 1 < bracket;
    std::size_t num = 0;
    if (valid) {
      for (std::size_t p = colon + 1; p < bracket; ++p) {
        if (std::isdigit(static_cast<unsigned char>(line[p])) == 0) {
          valid = false;
          break;
        }
        num = num * 10 + static_cast<std::size_t>(line[p] - '0');
      }
    }
    if (!valid) {
      throw ParseError("mtd-lint baseline line " + std::to_string(line_no) +
                       ": expected 'path:line: [rule] message', got '" +
                       std::string(line) + "'");
    }
    Finding f;
    f.path = std::string(line.substr(0, colon));
    f.line = num;
    f.rule = std::string(line.substr(bracket + 3, close - bracket - 3));
    f.message = std::string(
        lex::trim(line.substr(std::min(close + 2, line.size()))));
    baseline.entries_.push_back(std::move(f));
  }
  return baseline;
}

std::string Baseline::to_text(std::vector<Finding> findings) {
  sort_findings(findings);
  std::string out(kHeader);
  for (const Finding& f : findings) {
    out += f.path + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  return out;
}

BaselineDiff Baseline::diff(const std::vector<Finding>& findings) const {
  BaselineDiff result;
  std::vector<bool> matched(entries_.size(), false);
  for (const Finding& f : findings) {
    bool grandfathered = false;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (!matched[i] && same_finding(entries_[i], f)) {
        matched[i] = true;
        grandfathered = true;
        break;
      }
    }
    (grandfathered ? result.grandfathered : result.fresh).push_back(f);
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!matched[i]) result.stale.push_back(entries_[i]);
  }
  sort_findings(result.fresh);
  sort_findings(result.stale);
  sort_findings(result.grandfathered);
  return result;
}

std::string baseline_report_to_json(const BaselineDiff& diff,
                                    std::size_t files_scanned) {
  JsonObject doc;
  doc.emplace("files_scanned", files_scanned);
  doc.emplace("violations", diff.fresh.size() + diff.stale.size());
  doc.emplace("stale_baseline_entries", diff.stale.size());
  doc.emplace("grandfathered", diff.grandfathered.size());
  JsonArray arr;
  for (const Finding& f : diff.fresh) {
    JsonObject item;
    item.emplace("rule", f.rule);
    item.emplace("path", f.path);
    item.emplace("line", f.line);
    item.emplace("message", f.message);
    arr.emplace_back(std::move(item));
  }
  doc.emplace("findings", Json(std::move(arr)));
  return Json(std::move(doc)).dump(2);
}

}  // namespace mtd::lint
