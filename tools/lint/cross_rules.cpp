// Cross-file rule catalog for mtd-lint (pass 2 of the two-pass analyzer).
//
// These rules consume the ProjectModel built in pass 1 and check
// project-wide invariants the per-file rules cannot see: the include-layer
// DAG, checkpoint field parity across serialize/load/resume code, the
// append→flush→rename commit protocol, StreamEvent kind coverage in every
// sink switch, and the lock-acquisition order implied by MutexLock
// nesting. Each finding anchors to a concrete file:line, so the ordinary
// allow() suppression grammar applies unchanged. Fixture mini-trees under
// tools/lint/fixtures/*/src/ prove each rule fires on seeded-bad input
// (tests/test_lint_rules.cpp).
#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lex.hpp"
#include "lint/lint.hpp"

namespace mtd::lint {

namespace {

// ---------------------------------------------------------------------------
// include-layering: enforce the layer DAG and reject include cycles.
// ---------------------------------------------------------------------------

/// The sanctioned layer ranks, lowest first. A src/ file may include only
/// same-layer headers or headers from a strictly lower rank; two
/// different layers on the same rank may not include each other
/// (they are peers by design, not by accident). Keys are matched by
/// longest path prefix, so a nested directory (common/batch_rng) can be
/// its own layer above its parent: batch_rng builds on common/rng but
/// plain common code must not reach up into the vector kernels.
const std::map<std::string, int, std::less<>>& layer_ranks() {
  static const std::map<std::string, int, std::less<>> kRanks = {
      {"common", 0},
      {"common/batch_rng", 1},
      {"math", 2},     {"io", 2},       {"packet", 2},
      {"dataset", 3},
      {"core", 4},     {"mobility", 4},
      {"events", 5},
      {"store", 6},
      {"analysis", 7}, {"usecases", 7},
      {"engine", 8},
      {"scenario", 9},
  };
  return kRanks;
}

/// The path of `path` relative to its src/ root (empty when not in src/).
std::string src_rel(std::string_view path) {
  std::size_t start = 0;
  if (path.rfind("src/", 0) == 0) {
    start = 4;
  } else {
    const std::size_t pos = path.find("/src/");
    if (pos == std::string_view::npos) return {};
    start = pos + 5;
  }
  return std::string(path.substr(start));
}

/// Longest layer_ranks() key that is a directory prefix of `rel` (a path
/// relative to src/); empty when no rank covers it.
std::string layer_of(std::string_view rel) {
  std::string best;
  for (const auto& [key, rank] : layer_ranks()) {
    static_cast<void>(rank);
    if (rel.size() > key.size() && rel.compare(0, key.size(), key) == 0 &&
        rel[key.size()] == '/' && key.size() > best.size()) {
      best = key;
    }
  }
  return best;
}

class IncludeLayeringRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "include-layering";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "src/ includes must follow the layer DAG (common < "
           "common/batch_rng < math/io/packet < dataset < core/mobility "
           "< events < store < analysis/usecases < engine < scenario; "
           "layers match by longest path prefix): no upward, "
           "same-rank-peer, or cyclic includes";
  }
  void check_project(const ProjectModel& model,
                     std::vector<Finding>& out) const override {
    const auto& ranks = layer_ranks();
    // Edge checks: layer ranks by longest prefix.
    for (const IncludeEdge& edge : model.includes) {
      if (!ProjectModel::in_src(edge.path)) continue;
      const std::size_t slash = edge.target.find('/');
      if (slash == std::string::npos) continue;  // local "foo.hpp" include
      const std::string from_dir = layer_of(src_rel(edge.path));
      const std::string to_dir = layer_of(edge.target);
      if (from_dir == to_dir && !from_dir.empty()) continue;
      const auto from_it = ranks.find(from_dir);
      const auto to_it = ranks.find(to_dir);
      if (from_it == ranks.end() || to_it == ranks.end()) {
        const std::string unknown = from_it == ranks.end()
                                        ? ProjectModel::src_dir(edge.path)
                                        : edge.target.substr(0, slash);
        out.push_back({std::string(name()), edge.path, edge.line,
                       "directory 'src/" + unknown +
                           "' has no layer rank; add it to the layer table "
                           "in tools/lint/cross_rules.cpp"});
        continue;
      }
      if (to_it->second >= from_it->second) {
        out.push_back(
            {std::string(name()), edge.path, edge.line,
             "include of '" + edge.target + "' from layer '" + from_dir +
                 "' (rank " + std::to_string(from_it->second) +
                 ") reaches " +
                 (to_it->second == from_it->second ? "peer" : "upward") +
                 " layer '" + to_dir + "' (rank " +
                 std::to_string(to_it->second) +
                 "); dependencies must point strictly down the DAG"});
      }
    }
    check_cycles(model, out);
  }

 private:
  /// File-level cycle detection. Include targets are written relative to
  /// src/, so a target resolves to the scanned file sharing the includer's
  /// tree prefix (everything up to and including "src/") — fixture
  /// mini-trees stay separate from the real one.
  void check_cycles(const ProjectModel& model,
                    std::vector<Finding>& out) const {
    struct Edge {
      std::size_t to;
      std::size_t line;
    };
    std::vector<std::string> nodes;
    auto node_id = [&](const std::string& path) {
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i] == path) return i;
      }
      nodes.push_back(path);
      return nodes.size() - 1;
    };
    std::map<std::size_t, std::vector<Edge>> adj;
    std::set<std::string> known;
    for (const IncludeEdge& e : model.includes) known.insert(e.path);
    for (const IncludeEdge& e : model.includes) {
      if (!ProjectModel::in_src(e.path)) continue;
      const std::size_t src_pos = e.path.rfind("src/");
      const std::string resolved =
          e.path.substr(0, src_pos + 4) + e.target;
      if (known.count(resolved) == 0) continue;  // not scanned: no node
      adj[node_id(e.path)].push_back({node_id(resolved), e.line});
    }
    // Iterative DFS with colors; a back edge to a gray node is a cycle.
    enum : std::uint8_t { kWhite, kGray, kBlack };
    std::vector<std::uint8_t> color(nodes.size(), kWhite);
    std::vector<std::size_t> order(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return nodes[a] < nodes[b]; });
    for (const std::size_t root : order) {
      if (color[root] != kWhite) continue;
      std::vector<std::pair<std::size_t, std::size_t>> stack;  // node, edge#
      stack.emplace_back(root, 0);
      color[root] = kGray;
      while (!stack.empty()) {
        auto& [node, next] = stack.back();
        const auto it = adj.find(node);
        if (it == adj.end() || next >= it->second.size()) {
          color[node] = kBlack;
          stack.pop_back();
          continue;
        }
        const Edge edge = it->second[next++];
        if (color[edge.to] == kGray) {
          // Reconstruct the cycle path for the message.
          std::string path;
          bool in_cycle = false;
          for (const auto& [n, unused] : stack) {
            if (n == edge.to) in_cycle = true;
            if (in_cycle) path += nodes[n] + " -> ";
          }
          path += nodes[edge.to];
          out.push_back({std::string(name()), nodes[node], edge.line,
                         "include cycle: " + path});
          continue;
        }
        if (color[edge.to] == kWhite) {
          color[edge.to] = kGray;
          stack.emplace_back(edge.to, 0);
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// checkpoint-field-coverage: every persisted-struct field must appear in
// each serialize/load/compare role.
// ---------------------------------------------------------------------------

struct RoleSpec {
  std::string_view role;
  std::vector<std::string_view> functions;
};

struct CoverageSpec {
  std::string_view struct_name;
  std::vector<RoleSpec> roles;
};

const std::vector<CoverageSpec>& coverage_specs() {
  static const std::vector<CoverageSpec> kSpecs = {
      {"EngineCheckpoint",
       {
           {"serialize", {"EngineCheckpoint::to_json"}},
           {"load",
            {"EngineCheckpoint::from_json", "parse_common", "parse_shards"}},
           {"resume-compare", {"StreamEngine::resume"}},
       }},
      {"StoreManifest",
       {
           {"serialize", {"StoreManifest::to_text"}},
           {"load", {"StoreManifest::from_text"}},
           {"commit-compare",
            {"TraceStoreWriter::append", "TraceStoreWriter::Impl::commit"}},
       }},
  };
  return kSpecs;
}

class CheckpointFieldCoverageRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "checkpoint-field-coverage";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "every field of EngineCheckpoint/StoreManifest must be "
           "mentioned in the serialize, load, and resume/commit comparison "
           "code — catches \"added a field, forgot resume parity\"";
  }
  void check_project(const ProjectModel& model,
                     std::vector<Finding>& out) const override {
    for (const CoverageSpec& spec : coverage_specs()) {
      const std::vector<const StructField*> fields =
          model.fields_of(spec.struct_name);
      if (fields.empty()) continue;
      for (const RoleSpec& role : spec.roles) {
        std::vector<const FunctionBody*> bodies;
        for (const std::string_view fn : role.functions) {
          for (const FunctionBody* b : model.bodies_of(fn)) {
            bodies.push_back(b);
          }
        }
        // No scanned body plays this role (partial file list): stay inert
        // rather than flag every field of a file linted in isolation.
        if (bodies.empty()) continue;
        for (const StructField* field : fields) {
          bool mentioned = false;
          for (const FunctionBody* b : bodies) {
            if (lex::find_identifier(b->text, field->field) !=
                std::string_view::npos) {
              mentioned = true;
              break;
            }
          }
          if (!mentioned) {
            std::string fns;
            for (const std::string_view fn : role.functions) {
              if (!fns.empty()) fns += ", ";
              fns += fn;
            }
            out.push_back(
                {std::string(name()), field->path, field->line,
                 "field '" + std::string(spec.struct_name) +
                     "::" + field->field + "' is never mentioned in the " +
                     std::string(role.role) + " code (" + fns +
                     "); persisted state must round-trip through every "
                     "role or resumes diverge silently"});
          }
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// commit-protocol-order: append/write < flush < atomic replace, and no
// observable side effect between a fault_fire and the operation it guards.
// ---------------------------------------------------------------------------

class CommitProtocolOrderRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "commit-protocol-order";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "in commit paths, writes/appends must precede flush must "
           "precede the atomic rename/manifest replace, and no state "
           "mutation may sit between a store.commit.*/store.compact.*/"
           "checkpoint.write fault_fire and the I/O it guards";
  }
  void check_project(const ProjectModel& model,
                     std::vector<Finding>& out) const override {
    check_order(model, out);
    check_fault_adjacency(model, out);
  }

 private:
  void check_order(const ProjectModel& model,
                   std::vector<Finding>& out) const {
    for (const FunctionBody& fn : model.functions) {
      const std::string& t = fn.text;
      const std::size_t flush = t.find(".flush(");
      std::size_t atomic = t.find("write_file_atomic(");
      const std::size_t rename = lex::find_identifier(t, "rename");
      if (atomic == std::string::npos ||
          (rename != std::string::npos && rename < atomic)) {
        atomic = rename;
      }
      // Only functions that both flush and atomically replace are commit
      // paths; everything else is ordinary I/O.
      if (flush == std::string::npos || atomic == std::string::npos) {
        continue;
      }
      std::size_t write = t.find(".write(");
      const std::size_t append = t.find("append(");
      if (write == std::string::npos ||
          (append != std::string::npos && append < write)) {
        write = append;
      }
      if (write != std::string::npos && write > flush) {
        out.push_back({std::string(name()), fn.path, fn.line,
                       "'" + fn.name +
                           "' writes after flushing; the commit protocol "
                           "is append/write, then flush, then atomic "
                           "replace — later writes are not covered by the "
                           "durability barrier"});
      }
      if (atomic < flush) {
        out.push_back({std::string(name()), fn.path, fn.line,
                       "'" + fn.name +
                           "' atomically replaces before flushing; a crash "
                           "after the replace but before the flush can "
                           "publish a manifest pointing at unsynced data"});
      }
    }
  }

  void check_fault_adjacency(const ProjectModel& model,
                             std::vector<Finding>& out) const {
    static constexpr std::array<std::string_view, 5> kIoTokens = {
        ".write(", ".flush(", "write_file_atomic(", "rename(", "fault_fire",
    };
    static constexpr std::array<std::string_view, 9> kMutations = {
        "push_back",  "emplace_back", ".insert(", ".erase(", ".reset(",
        "+=",         "-=",           "++",       "--",
    };
    // Map each guarded fault site back to its file's blanked lines.
    for (const FaultSite& site : model.fault_sites) {
      const bool guarded = site.point.rfind("store.commit.", 0) == 0 ||
                           site.point.rfind("store.compact.", 0) == 0 ||
                           site.point == "checkpoint.write";
      if (!guarded) continue;
      const std::vector<std::string>* code = nullptr;
      for (const auto& [path, lines] : model.file_code) {
        if (path == site.path) {
          code = &lines;
          break;
        }
      }
      if (code == nullptr || site.line == 0) continue;
      // Scan from just after the fault_fire to the next I/O token; any
      // mutation in between is observable state the injected fault would
      // leave behind, breaking exactly-once crash recovery.
      const std::size_t limit = std::min(code->size(), site.line + 10);
      for (std::size_t i = site.line - 1; i < limit; ++i) {
        std::string_view line = (*code)[i];
        if (i == site.line - 1) {
          const std::size_t after = line.find("fault_fire");
          const std::size_t close =
              after == std::string_view::npos ? 0 : line.find(')', after);
          line = close == std::string_view::npos
                     ? std::string_view{}
                     : line.substr(close + 1);
        }
        std::size_t io_pos = std::string_view::npos;
        for (const std::string_view tok : kIoTokens) {
          const std::size_t p = line.find(tok);
          if (p != std::string_view::npos && p < io_pos) io_pos = p;
        }
        const std::string_view before =
            io_pos == std::string_view::npos ? line : line.substr(0, io_pos);
        for (const std::string_view mut : kMutations) {
          if (before.find(mut) != std::string_view::npos) {
            out.push_back(
                {std::string(name()), site.path, i + 1,
                 "state mutation ('" + std::string(mut) +
                     "') between fault_fire(\"" + site.point +
                     "\") and the I/O it guards; an injected fault here "
                     "leaves observable side effects behind"});
            break;
          }
        }
        if (io_pos != std::string_view::npos) break;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// event-kind-exhaustiveness: every EventKind handled in each kind switch.
// ---------------------------------------------------------------------------

class EventKindExhaustivenessRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "event-kind-exhaustiveness";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "every switch over an event kind must handle all EventKind "
           "enumerators, or carry a default explicitly marked "
           "'mtd-lint: exhaustive-default' — silent drops of a new kind "
           "break conservation accounting";
  }
  [[nodiscard]] std::string escape_hatch() const override {
    return "// mtd-lint: exhaustive-default (on the default:), or "
           "// mtd-lint: allow(event-kind-exhaustiveness)";
  }
  void check_project(const ProjectModel& model,
                     std::vector<Finding>& out) const override {
    if (model.event_kinds.empty()) return;  // enum not scanned: inert
    for (const KindSwitch& sw : model.kind_switches) {
      if (sw.cases.empty()) continue;  // not an EventKind switch
      std::vector<std::string> missing;
      for (const std::string& kind : model.event_kinds) {
        if (sw.cases.count(kind) == 0) missing.push_back(kind);
      }
      if (missing.empty()) continue;
      bool marked_default = false;
      for (const bool marked : sw.default_marked) {
        marked_default = marked_default || marked;
      }
      if (marked_default) continue;
      std::string list;
      for (const std::string& kind : missing) {
        if (!list.empty()) list += ", ";
        list += "EventKind::" + kind;
      }
      const bool has_default = !sw.default_lines.empty();
      out.push_back(
          {std::string(name()), sw.path,
           has_default ? sw.default_lines.front() : sw.line,
           has_default
               ? "default swallows unhandled kinds (" + list +
                     "); handle them or mark the default with "
                     "'// mtd-lint: exhaustive-default'"
               : "switch over event kind does not handle " + list +
                     "; add the cases or a default marked "
                     "'// mtd-lint: exhaustive-default'"});
    }
  }
};

// ---------------------------------------------------------------------------
// lock-ordering: cycles in the lock-acquisition graph.
// ---------------------------------------------------------------------------

class LockOrderingRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lock-ordering";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "derives the lock-acquisition graph from MutexLock nesting and "
           "MTD_REQUIRES contracts and fails on cycles: two locks taken in "
           "both orders anywhere in the tree can deadlock";
  }
  void check_project(const ProjectModel& model,
                     std::vector<Finding>& out) const override {
    // For each acquisition edge held -> acquired, a path acquired => held
    // elsewhere closes a deadlock cycle. BFS over the distinct edge set.
    std::map<std::string, std::set<std::string>> adj;
    for (const LockEdge& e : model.lock_edges) {
      adj[e.held].insert(e.acquired);
    }
    std::set<std::pair<std::string, std::size_t>> reported;
    for (const LockEdge& e : model.lock_edges) {
      if (!reachable(adj, e.acquired, e.held)) continue;
      if (!reported.emplace(e.path, e.line).second) continue;
      out.push_back(
          {std::string(name()), e.path, e.line,
           "lock-ordering cycle: '" + e.acquired + "' is acquired here "
               "while '" + e.held + "' is held, but '" + e.held +
               "' is also acquired (directly or transitively) while '" +
               e.acquired + "' is held elsewhere; pick one global order"});
    }
  }

 private:
  static bool reachable(
      const std::map<std::string, std::set<std::string>>& adj,
      const std::string& from, const std::string& to) {
    std::set<std::string> seen;
    std::vector<const std::string*> queue = {&from};
    seen.insert(from);
    while (!queue.empty()) {
      const std::string* node = queue.back();
      queue.pop_back();
      if (*node == to) return true;
      const auto it = adj.find(*node);
      if (it == adj.end()) continue;
      for (const std::string& next : it->second) {
        if (seen.insert(next).second) queue.push_back(&next);
      }
    }
    return false;
  }
};

}  // namespace

void register_cross_rules(RuleRegistry& registry) {
  registry.add(std::make_unique<IncludeLayeringRule>());
  registry.add(std::make_unique<CheckpointFieldCoverageRule>());
  registry.add(std::make_unique<CommitProtocolOrderRule>());
  registry.add(std::make_unique<EventKindExhaustivenessRule>());
  registry.add(std::make_unique<LockOrderingRule>());
}

}  // namespace mtd::lint
