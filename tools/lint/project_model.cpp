#include "lint/project_model.hpp"

#include <array>
#include <utility>

#include "lint/lex.hpp"
#include "lint/lint.hpp"

namespace mtd::lint {

namespace {

using lex::find_identifier;
using lex::ident_char;
using lex::parse_decl_head;
using lex::read_qualified_identifier;
using lex::trim;

/// Keywords that disqualify a struct-body statement from being a field.
constexpr std::array<std::string_view, 12> kNonFieldStarts = {
    "struct",  "class",    "enum",      "using", "friend", "static",
    "public",  "private",  "protected", "template", "typedef", "operator",
};

/// The trailing identifier of `text` (the declared name of a field whose
/// declaration text runs up to '=', '{' or ';'), or empty.
std::string_view last_identifier(std::string_view text) {
  text = trim(text);
  if (text.empty() || !ident_char(text.back())) return {};
  std::size_t start = text.size();
  while (start > 0 && ident_char(text[start - 1])) --start;
  // A lone identifier is a type without a name (e.g. "Impl;"), not a field.
  if (trim(text.substr(0, start)).empty()) return {};
  return text.substr(start);
}

bool starts_with_non_field_keyword(std::string_view text) {
  for (const std::string_view k : kNonFieldStarts) {
    if (text.rfind(k, 0) == 0 &&
        (text.size() == k.size() || !ident_char(text[k.size()]))) {
      return true;
    }
  }
  return false;
}

/// Collects the data members of every struct/class defined in a file.
/// Heuristic: inside the struct's braces, a depth-1 statement terminated
/// by ';' or a brace initializer that contains no '(' (methods, ctors and
/// annotated members carry parens) and does not start with a declaration
/// keyword is a field; its name is the last identifier before any
/// initializer. Nested blocks (inline method bodies, nested types) are
/// skipped wholesale.
void collect_struct_fields(const SourceFile& file,
                           std::vector<StructField>& out) {
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string_view line = trim(file.code[i]);
    std::string_view kw;
    if (line.rfind("struct ", 0) == 0) kw = "struct ";
    else if (line.rfind("class ", 0) == 0) kw = "class ";
    else continue;
    const std::string_view name =
        read_qualified_identifier(line, kw.size());
    if (name.empty()) continue;
    // Find the opening brace before any ';' (forward declarations have
    // none); search at most a few lines ahead.
    std::size_t open_line = i;
    std::size_t open_col = std::string::npos;
    bool found = false;
    for (std::size_t j = i; j < std::min(file.code.size(), i + 4) && !found;
         ++j) {
      const std::string& probe = file.code[j];
      for (std::size_t c = 0; c < probe.size(); ++c) {
        if (probe[c] == ';') { found = true; break; }
        if (probe[c] == '{') {
          open_line = j;
          open_col = c;
          found = true;
          break;
        }
      }
    }
    if (open_col == std::string::npos) continue;

    // Walk the body as a depth-1 statement machine. `stmt` accumulates the
    // current statement's text; everything at depth >= 2 is ignored.
    auto emit_field = [&](std::string_view text, std::size_t line_no) {
      text = trim(text);
      if (text.empty() || text.find('(') != std::string_view::npos) return;
      if (starts_with_non_field_keyword(text)) return;
      std::size_t end = text.size();
      const std::size_t eq = text.find('=');
      if (eq != std::string_view::npos) end = std::min(end, eq);
      const std::string_view field = last_identifier(text.substr(0, end));
      if (!field.empty()) {
        out.push_back(
            {std::string(name), std::string(field), file.path, line_no});
      }
    };
    int depth = 0;
    std::string stmt;
    bool done = false;
    for (std::size_t j = open_line; j < file.code.size() && !done; ++j) {
      const std::string& body = file.code[j];
      for (std::size_t c = j == open_line ? open_col : 0; c < body.size();
           ++c) {
        const char ch = body[c];
        if (ch == '{') {
          ++depth;
          if (depth == 2) {
            // Entering a nested block: a brace-initialized field keeps its
            // head as the field declaration; a method body / nested type
            // is discarded wholesale.
            const std::string_view text = trim(stmt);
            if (!text.empty() &&
                text.find('(') == std::string_view::npos &&
                !starts_with_non_field_keyword(text)) {
              emit_field(text, j + 1);
            }
            stmt.clear();
          }
          continue;
        }
        if (ch == '}') {
          --depth;
          if (depth == 0) {
            done = true;
            break;
          }
          continue;
        }
        if (depth != 1) continue;
        if (ch == ';') {
          emit_field(stmt, j + 1);
          stmt.clear();
          continue;
        }
        if (ch == ':') {
          // Access specifiers reset the statement; "::" and bit-fields
          // keep accumulating.
          const std::string_view text = trim(stmt);
          if (text == "public" || text == "private" || text == "protected") {
            stmt.clear();
            continue;
          }
        }
        stmt += ch;
      }
      if (!done && depth >= 1) stmt += ' ';  // line break inside a statement
    }
  }
}

/// Collects every function definition body: a "TYPE name(" head whose
/// statement terminator is '{' rather than ';'. The body text (blanked) is
/// captured from that '{' through its matching '}'.
void collect_function_bodies(const SourceFile& file,
                             std::vector<FunctionBody>& out) {
  // Statement keywords that parse_decl_head can mistake for return types
  // ("return Foo(...)", "co_return Bar(...)").
  static constexpr std::array<std::string_view, 12> kStmtKeywords = {
      "return", "throw",    "new",   "delete",    "goto",     "do",
      "using",  "typedef",  "else",  "co_return", "co_await", "co_yield",
  };
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    bool has_nodiscard = false;
    const lex::DeclHead head = parse_decl_head(file.code[i], has_nodiscard);
    if (!head.valid) continue;
    bool keyword = false;
    for (const std::string_view k : kStmtKeywords) {
      if (head.type == k) { keyword = true; break; }
    }
    if (keyword) continue;
    // Scan forward for the statement terminator; ';' means declaration.
    std::size_t open_line = 0;
    std::size_t open_col = 0;
    bool found = false;
    for (std::size_t j = i; j < std::min(file.code.size(), i + 8) && !found;
         ++j) {
      for (std::size_t c = 0; c < file.code[j].size(); ++c) {
        const char ch = file.code[j][c];
        if (ch == ';') { found = true; open_col = std::string::npos; break; }
        if (ch == '{') { found = true; open_line = j; open_col = c; break; }
      }
    }
    if (!found || open_col == std::string::npos) continue;

    FunctionBody body;
    body.name = std::string(head.name);
    body.path = file.path;
    body.line = i + 1;
    int depth = 0;
    bool done = false;
    for (std::size_t j = open_line; j < file.code.size() && !done; ++j) {
      const std::string& text = file.code[j];
      for (std::size_t c = j == open_line ? open_col : 0; c < text.size();
           ++c) {
        const char ch = text[c];
        body.text += ch;
        if (ch == '{') ++depth;
        if (ch == '}' && --depth == 0) { done = true; break; }
      }
      body.text += '\n';
    }
    if (done) out.push_back(std::move(body));
  }
}

/// Captures the enumerators of `enum class EventKind` when a scanned file
/// declares it.
void collect_event_kinds(const SourceFile& file,
                         std::vector<std::string>& out) {
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::size_t pos = file.code[i].find("enum class EventKind");
    if (pos == std::string::npos) continue;
    // Enumerators: identifiers at depth 1 that open a "name [= value] ,|}"
    // item.
    int depth = 0;
    bool expecting = false;
    for (std::size_t j = i; j < file.code.size(); ++j) {
      const std::string& line = file.code[j];
      for (std::size_t c = j == i ? pos : 0; c < line.size(); ++c) {
        const char ch = line[c];
        if (ch == '{') {
          ++depth;
          expecting = true;
          continue;
        }
        if (ch == '}') return;  // EventKind is a flat enum: first '}' ends it
        if (depth != 1) continue;
        if (ch == ',') {
          expecting = true;
          continue;
        }
        if (expecting && ident_char(ch)) {
          const std::string_view name =
              read_qualified_identifier(line, c);
          out.emplace_back(name);
          c += name.size() - 1;
          expecting = false;
        }
      }
    }
    return;
  }
}

/// Collects switch statements over an event kind and their EventKind case
/// labels / default labels.
void collect_kind_switches(const SourceFile& file,
                           std::vector<KindSwitch>& out) {
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::size_t sw = find_identifier(file.code[i], "switch");
    if (sw == std::string::npos) continue;
    const std::size_t open = file.code[i].find('(', sw);
    if (open == std::string::npos) continue;
    // Condition text (single line is enough: every switch head in this
    // codebase fits one line; a multi-line head simply isn't matched).
    int pdepth = 0;
    std::size_t close = std::string::npos;
    for (std::size_t c = open; c < file.code[i].size(); ++c) {
      if (file.code[i][c] == '(') ++pdepth;
      if (file.code[i][c] == ')' && --pdepth == 0) { close = c; break; }
    }
    if (close == std::string::npos) continue;
    const std::string_view cond =
        std::string_view(file.code[i]).substr(open + 1, close - open - 1);
    if (cond.find("kind") == std::string_view::npos) continue;

    KindSwitch ks;
    ks.path = file.path;
    ks.line = i + 1;
    // Walk the switch body collecting labels.
    int depth = 0;
    bool entered = false;
    bool done = false;
    for (std::size_t j = i; j < file.code.size() && !done; ++j) {
      const std::string& line = file.code[j];
      for (std::size_t c = j == i ? close : 0; c < line.size(); ++c) {
        if (line[c] == '{') { ++depth; entered = true; }
        if (line[c] == '}' && --depth == 0 && entered) { done = true; break; }
      }
      if (!entered) continue;
      const std::string_view t = trim(line);
      if (t.rfind("case ", 0) == 0) {
        const std::size_t ek = t.find("EventKind::");
        if (ek != std::string_view::npos) {
          // read_qualified_identifier accepts ':' (for "::"), so the
          // label's terminating colon rides along; strip it.
          std::string_view label = read_qualified_identifier(t, ek + 11);
          while (!label.empty() && label.back() == ':') {
            label.remove_suffix(1);
          }
          if (!label.empty()) ks.cases.emplace(label);
        }
      } else if (t.rfind("default", 0) == 0 &&
                 t.find(':') != std::string_view::npos) {
        ks.default_lines.push_back(j + 1);
        ks.default_marked.push_back(
            j < file.lines.size() &&
            file.lines[j].find("mtd-lint: exhaustive-default") !=
                std::string::npos);
      }
    }
    if (!ks.cases.empty() || !ks.default_lines.empty()) {
      out.push_back(std::move(ks));
    }
  }
}

/// Normalizes a mutex expression: strips spaces, leading '&'/'*' and a
/// "this->" prefix, so `mutex_`, `this->mutex_` and `*mutex_` unify.
std::string normalize_mutex(std::string_view expr) {
  std::string norm;
  for (const char c : expr) {
    if (c != ' ' && c != '\t') norm += c;
  }
  while (!norm.empty() && (norm.front() == '&' || norm.front() == '*')) {
    norm.erase(norm.begin());
  }
  if (norm.rfind("this->", 0) == 0) norm.erase(0, 6);
  return norm;
}

/// Derives lock-acquisition edges from MutexLock nesting and MTD_REQUIRES
/// contracts. A held lock is any MutexLock (or REQUIRES-declared capability)
/// in an enclosing scope that has not yet closed.
void collect_lock_edges(const SourceFile& file, std::vector<LockEdge>& out) {
  struct Held {
    std::string lock;
    int depth;
  };
  std::vector<Held> held;
  int depth = 0;
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    // Acquisitions on this line are recorded before its brace movements:
    // `{ MutexLock lock(m); }` one-liners are rare and conservative here.
    for (const char* token : {"MutexLock", "MTD_REQUIRES"}) {
      const bool is_requires = token[1] == 'T';
      std::size_t pos = find_identifier(line, token);
      while (pos != std::string::npos) {
        std::size_t p = pos + std::string_view(token).size();
        if (!is_requires) {
          // MutexLock <var>( <expr> )
          while (p < line.size() && (line[p] == ' ' || line[p] == '&')) ++p;
          const std::string_view var = read_qualified_identifier(line, p);
          p += var.size();
        }
        while (p < line.size() && line[p] == ' ') ++p;
        if (p >= line.size() || line[p] != '(') break;
        int pd = 0;
        std::size_t close = std::string::npos;
        for (std::size_t c = p; c < line.size(); ++c) {
          if (line[c] == '(') ++pd;
          if (line[c] == ')' && --pd == 0) { close = c; break; }
        }
        if (close == std::string::npos) break;
        // An MTD_REQUIRES on a pure declaration (terminated by ';' on the
        // same line) holds nothing here — only a definition's contract
        // carries into the body that follows.
        if (is_requires &&
            line.find(';', close) != std::string::npos) {
          pos = find_identifier(line, token, close);
          continue;
        }
        const std::string lock =
            normalize_mutex(line.substr(p + 1, close - p - 1));
        if (!lock.empty()) {
          for (const Held& h : held) {
            if (h.lock != lock) {
              out.push_back({h.lock, lock, file.path, i + 1});
            }
          }
          // A MutexLock is released when its enclosing scope closes; a
          // REQUIRES contract is released when the *upcoming* body closes,
          // which returns the walk to the current depth.
          held.push_back({lock, is_requires ? depth + 1 : depth});
        }
        pos = find_identifier(line, token, close);
      }
    }
    for (const char c : line) {
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
        if (depth <= 0) {
          depth = 0;
          held.clear();
        }
      }
    }
  }
}

/// Records every fault_fire call site with the point name it fires. Point
/// names are string literals, so they are read from the raw lines.
void collect_fault_sites(const SourceFile& file,
                         std::vector<FaultSite>& out) {
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    if (find_identifier(file.code[i], "fault_fire") == std::string::npos) {
      continue;
    }
    const std::string& raw =
        i < file.lines.size() ? file.lines[i] : file.code[i];
    const std::size_t call = raw.find("fault_fire");
    std::string point;
    if (call != std::string::npos) {
      const std::size_t q1 = raw.find('"', call);
      const std::size_t q2 =
          q1 == std::string::npos ? q1 : raw.find('"', q1 + 1);
      if (q2 != std::string::npos) point = raw.substr(q1 + 1, q2 - q1 - 1);
    }
    out.push_back({std::move(point), file.path, i + 1});
  }
}

void collect_includes(const SourceFile& file, std::vector<IncludeEdge>& out) {
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string_view line = trim(file.lines[i]);
    if (line.rfind("#include", 0) != 0) continue;
    const std::size_t open = line.find('"', 8);
    if (open == std::string_view::npos) continue;  // <system> includes
    const std::size_t close = line.find('"', open + 1);
    if (close == std::string_view::npos) continue;
    out.push_back({file.path, i + 1,
                   std::string(line.substr(open + 1, close - open - 1))});
  }
}

}  // namespace

bool ProjectModel::in_src(std::string_view path) {
  return path.rfind("src/", 0) == 0 ||
         path.find("/src/") != std::string_view::npos;
}

std::string ProjectModel::src_dir(std::string_view path) {
  std::size_t start = 0;
  if (path.rfind("src/", 0) == 0) {
    start = 4;
  } else {
    const std::size_t pos = path.find("/src/");
    if (pos == std::string_view::npos) return {};
    start = pos + 5;
  }
  const std::size_t slash = path.find('/', start);
  if (slash == std::string_view::npos) return {};  // file directly in src/
  return std::string(path.substr(start, slash - start));
}

std::vector<const StructField*> ProjectModel::fields_of(
    std::string_view struct_name) const {
  std::vector<const StructField*> out;
  for (const StructField& f : struct_fields) {
    if (f.struct_name == struct_name) out.push_back(&f);
  }
  return out;
}

std::vector<const FunctionBody*> ProjectModel::bodies_of(
    std::string_view function) const {
  std::vector<const FunctionBody*> out;
  for (const FunctionBody& b : functions) {
    const bool exact = b.name == function;
    const bool suffix = b.name.size() > function.size() + 2 &&
                        b.name.compare(b.name.size() - function.size(),
                                       function.size(), function) == 0 &&
                        b.name.compare(b.name.size() - function.size() - 2, 2,
                                       "::") == 0;
    if (exact || suffix) out.push_back(&b);
  }
  return out;
}

ProjectModel build_project_model(const std::vector<SourceFile>& files) {
  ProjectModel model;
  for (const SourceFile& file : files) {
    collect_includes(file, model.includes);
    collect_must_check_functions(file, model.must_check_functions);
    collect_void_functions(file, model.void_functions);
    if (!ProjectModel::in_src(file.path)) continue;
    model.file_code.emplace_back(file.path, file.code);
    collect_struct_fields(file, model.struct_fields);
    collect_function_bodies(file, model.functions);
    collect_event_kinds(file, model.event_kinds);
    collect_kind_switches(file, model.kind_switches);
    collect_lock_edges(file, model.lock_edges);
    collect_fault_sites(file, model.fault_sites);
  }
  return model;
}

}  // namespace mtd::lint
