// Shared lexical helpers for mtd-lint rules and the ProjectModel builder.
//
// Everything here operates on blanked code lines (SourceFile::code):
// comment and literal contents are already spaces, so identifier matching
// never fires inside docs or strings. These helpers were private to
// rules.cpp while the linter was single-pass; the two-pass analyzer's
// pass 1 (project_model.cpp) needs the same tokenizer, so they live in one
// internal header now. Not part of the public lint.hpp surface.
#pragma once

#include <cctype>
#include <string_view>

namespace mtd::lint::lex {

inline bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Finds `ident` in `line` as a whole identifier (not a substring of a
/// longer one). A ':' before the match is accepted so both `rand` and
/// `std::rand` hit the same token list.
inline std::size_t find_identifier(std::string_view line,
                                   std::string_view ident,
                                   std::size_t from = 0) {
  std::size_t pos = line.find(ident, from);
  while (pos != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    const std::size_t end = pos + ident.size();
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return pos;
    pos = line.find(ident, pos + 1);
  }
  return std::string_view::npos;
}

inline std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Reads one identifier (possibly ::-qualified) starting at `pos`; returns
/// empty when `pos` does not start one.
inline std::string_view read_qualified_identifier(std::string_view s,
                                                  std::size_t pos) {
  const std::size_t start = pos;
  while (pos < s.size() && (ident_char(s[pos]) || s[pos] == ':')) ++pos;
  return s.substr(start, pos - start);
}

/// A parsed candidate "TYPE name(" declaration head.
struct DeclHead {
  std::string_view type;
  std::string_view name;
  bool valid = false;
};

/// Matches a line whose first tokens are a return type followed by a
/// function name and '('. Leading specifiers and attributes are skipped;
/// `has_nodiscard` reports whether an attribute block containing
/// "nodiscard" was seen among them. Callers filter on `type`.
inline DeclHead parse_decl_head(std::string_view line, bool& has_nodiscard) {
  DeclHead head;
  std::string_view s = trim(line);
  has_nodiscard = false;
  for (;;) {
    if (s.rfind("[[", 0) == 0) {
      const std::size_t close = s.find("]]");
      if (close == std::string_view::npos) return head;
      if (s.substr(0, close).find("nodiscard") != std::string_view::npos) {
        has_nodiscard = true;
      }
      s = trim(s.substr(close + 2));
      continue;
    }
    bool stripped = false;
    for (std::string_view spec :
         {"static ", "virtual ", "inline ", "constexpr ", "friend ",
          "explicit ", "extern "}) {
      if (s.rfind(spec, 0) == 0) {
        s = trim(s.substr(spec.size()));
        stripped = true;
        break;
      }
    }
    if (!stripped) break;
  }
  const std::string_view type = read_qualified_identifier(s, 0);
  if (type.empty()) return head;
  std::size_t pos = type.size();
  while (pos < s.size() && s[pos] == ' ') ++pos;
  // A '&' or '*' here means the function returns a reference/pointer to a
  // result object (an accessor) — not a must-check producer.
  if (pos >= s.size() || !ident_char(s[pos]) ||
      std::isdigit(static_cast<unsigned char>(s[pos])) != 0) {
    return head;
  }
  const std::string_view name = read_qualified_identifier(s, pos);
  pos += name.size();
  while (pos < s.size() && s[pos] == ' ') ++pos;
  if (pos >= s.size() || s[pos] != '(') return head;
  head.type = type;
  head.name = name;
  head.valid = true;
  return head;
}

}  // namespace mtd::lint::lex
