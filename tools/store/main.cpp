// mtd_store CLI: inspect and query an on-disk trace store (DESIGN.md
// section 12).
//
// Usage:
//   mtd_store stats   <store>
//   mtd_store get     <store> <bs> <day> <minute> <seq>
//   mtd_store scan    <store> <bs> <day_lo> <day_hi>
//   mtd_store verify  <store>
//   mtd_store compact <store>
//
// Exit codes: 0 success, 1 not found / verification failure, 2 usage or
// I/O error. Unknown subcommands and wrong arities diagnose themselves on
// stderr before the usage text.
#include <charconv>
#include <cstdio>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "store/trace_store.hpp"

namespace {

using mtd::EventKind;
using mtd::StreamEvent;

void print_usage() {
  std::fputs(
      "usage: mtd_store stats   <store>\n"
      "       mtd_store get     <store> <bs> <day> <minute> <seq>\n"
      "       mtd_store scan    <store> <bs> <day_lo> <day_hi>\n"
      "       mtd_store verify  <store>\n"
      "       mtd_store compact <store>\n"
      "\n"
      "Query and maintenance tool for mtd trace stores (<store> is the\n"
      "manifest path; the page file sits next to it as <store>.pages).\n",
      stderr);
}

std::uint64_t parse_u64(std::string_view arg, const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(arg.data(), arg.data() + arg.size(), v);
  if (ec != std::errc{} || ptr != arg.data() + arg.size()) {
    throw mtd::InvalidArgument("mtd_store: bad " + std::string(what) + " '" +
                               std::string(arg) + "'");
  }
  return v;
}

void print_event(const StreamEvent& event) {
  std::printf("%s bs=%u day=%u minute=%u seq=%llu",
              to_string(event.kind()), event.key.bs, event.key.day,
              event.key.minute_of_day,
              static_cast<unsigned long long>(event.key.seq));
  switch (event.kind()) {
    case EventKind::kMinute:
      std::printf(" arrivals=%u",
                  std::get<mtd::MinuteEvent>(event.payload).arrivals);
      break;
    case EventKind::kSession: {
      const mtd::Session& s =
          std::get<mtd::SessionEvent>(event.payload).session;
      std::printf(" service=%u transient=%d volume_mb=%.9g duration_s=%.9g",
                  s.service, s.transient ? 1 : 0, s.volume_mb, s.duration_s);
      break;
    }
    case EventKind::kSegment: {
      const mtd::SegmentEvent& e = std::get<mtd::SegmentEvent>(event.payload);
      std::printf(" service=%u session_seq=%llu hop=%u volume_mb=%.9g"
                  " duration_s=%.9g",
                  e.service, static_cast<unsigned long long>(e.session_seq),
                  e.segment.hop, e.segment.volume_mb, e.segment.duration_s);
      break;
    }
    case EventKind::kPacket: {
      const mtd::PacketEvent& e = std::get<mtd::PacketEvent>(event.payload);
      std::printf(" service=%u session_seq=%llu time_s=%.9g size_bytes=%u",
                  e.service, static_cast<unsigned long long>(e.session_seq),
                  e.packet.time_s, e.packet.size_bytes);
      break;
    }
  }
  std::printf("\n");
}

int cmd_stats(const std::string& path) {
  mtd::store::TraceStore reader(path);
  const mtd::store::StoreManifest& m = reader.manifest();
  std::printf("store:           %s\n", path.c_str());
  std::printf("page size:       %zu bytes\n", m.options.page_size);
  std::printf("committed pages: %llu (%llu bytes)\n",
              static_cast<unsigned long long>(m.committed_pages),
              static_cast<unsigned long long>(m.committed_bytes()));
  std::printf("dead pages:      %llu\n",
              static_cast<unsigned long long>(m.dead_pages));
  std::printf("segments:        %zu\n", m.segments.size());
  std::printf("events:          %llu\n",
              static_cast<unsigned long long>(m.events));
  for (std::size_t k = 0; k < mtd::kNumEventKinds; ++k) {
    std::printf("  %-9s      %llu\n", to_string(static_cast<EventKind>(k)),
                static_cast<unsigned long long>(m.events_by_kind[k]));
  }
  if (m.engine_next_day >= 0) {
    std::printf("engine cursor:   next day %lld\n",
                static_cast<long long>(m.engine_next_day));
  } else {
    std::printf("engine cursor:   (not set)\n");
  }
  for (const mtd::store::SegmentInfo& seg : m.segments) {
    const std::uint64_t fence_pages =
        seg.num_pages - seg.num_leaves - seg.num_bloom_pages;
    std::printf(
        "segment @%llu: %llu events, %llu pages (%llu leaves, %llu fence, "
        "%llu bloom), blooms %u B x %u hashes, depth %u, bs %u..%u, "
        "days %u..%u\n",
        static_cast<unsigned long long>(seg.first_page),
        static_cast<unsigned long long>(seg.events),
        static_cast<unsigned long long>(seg.num_pages),
        static_cast<unsigned long long>(seg.num_leaves),
        static_cast<unsigned long long>(fence_pages),
        static_cast<unsigned long long>(seg.num_bloom_pages), seg.bloom_bytes,
        seg.bloom_hashes, seg.depth, seg.min_key.bs, seg.max_key.bs,
        seg.min_key.day, seg.max_key.day);
  }
  return 0;
}

int cmd_compact(const std::string& path) {
  mtd::store::TraceStoreWriter writer =
      mtd::store::TraceStoreWriter::append(path);
  const mtd::store::CompactionReport report = writer.compact();
  writer.close();
  if (report.segments_before < 2) {
    std::printf("mtd_store: nothing to compact (%llu segment(s))\n",
                static_cast<unsigned long long>(report.segments_before));
    return 0;
  }
  std::printf(
      "mtd_store: compacted %llu segment(s) into %llu — %llu events, "
      "%llu pages written, %llu pages retired\n",
      static_cast<unsigned long long>(report.segments_before),
      static_cast<unsigned long long>(report.segments_after),
      static_cast<unsigned long long>(report.events),
      static_cast<unsigned long long>(report.pages_written),
      static_cast<unsigned long long>(report.pages_retired));
  return 0;
}

int cmd_get(const std::string& path, const mtd::EventKey& key) {
  mtd::store::TraceStore reader(path);
  const auto event = reader.get(key);
  if (!event.has_value()) {
    std::fprintf(stderr, "mtd_store: no event with that key\n");
    return 1;
  }
  print_event(*event);
  return 0;
}

int cmd_scan(const std::string& path, std::uint32_t bs, std::uint16_t day_lo,
             std::uint16_t day_hi) {
  mtd::store::TraceStore reader(path);
  const std::uint64_t count = reader.scan(
      bs, day_lo, day_hi, [](const StreamEvent& event) { print_event(event); });
  const mtd::store::StoreReadTelemetry& t = reader.telemetry();
  std::fprintf(stderr,
               "mtd_store: %llu event(s); %llu pages read, %llu leaves "
               "skipped by fences, %llu by blooms\n",
               static_cast<unsigned long long>(count),
               static_cast<unsigned long long>(t.pages_read),
               static_cast<unsigned long long>(t.leaves_skipped_fence),
               static_cast<unsigned long long>(t.leaves_skipped_bloom));
  return 0;
}

int cmd_verify(const std::string& path) {
  mtd::store::TraceStore reader(path);
  const mtd::store::StoreVerifyReport report = reader.verify();
  std::printf(
      "mtd_store: OK — %llu pages (%llu leaves) across %llu segment(s), "
      "%llu events\n",
      static_cast<unsigned long long>(report.pages),
      static_cast<unsigned long long>(report.leaf_pages),
      static_cast<unsigned long long>(report.segments),
      static_cast<unsigned long long>(report.events));
  return 0;
}

/// Arguments each subcommand takes after the subcommand word itself
/// (<store> included). Unknown names return SIZE_MAX.
std::size_t expected_args(std::string_view command) {
  if (command == "stats" || command == "verify" || command == "compact") {
    return 1;
  }
  if (command == "get") return 5;
  if (command == "scan") return 4;
  return static_cast<std::size_t>(-1);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string_view command = argv[1];
  // No subcommand takes flags: any dash-prefixed argument (including a
  // dash-prefixed "subcommand" such as --help) is diagnosed by name rather
  // than silently falling through to the usage text.
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "mtd_store: unknown flag '%s'\n", argv[i]);
      print_usage();
      return 2;
    }
  }
  const std::size_t expected = expected_args(command);
  if (expected == static_cast<std::size_t>(-1)) {
    std::fprintf(stderr, "mtd_store: unknown subcommand '%s'\n",
                 std::string(command).c_str());
    print_usage();
    return 2;
  }
  if (static_cast<std::size_t>(argc) != expected + 2) {
    std::fprintf(stderr,
                 "mtd_store: '%s' takes %zu argument(s), got %d\n",
                 std::string(command).c_str(), expected, argc - 2);
    print_usage();
    return 2;
  }
  const std::string path = argv[2];
  try {
    if (command == "stats") return cmd_stats(path);
    if (command == "get") {
      mtd::EventKey key;
      key.bs = static_cast<std::uint32_t>(parse_u64(argv[3], "bs"));
      key.day = static_cast<std::uint16_t>(parse_u64(argv[4], "day"));
      key.minute_of_day =
          static_cast<std::uint16_t>(parse_u64(argv[5], "minute"));
      key.seq = parse_u64(argv[6], "seq");
      return cmd_get(path, key);
    }
    if (command == "scan") {
      return cmd_scan(path,
                      static_cast<std::uint32_t>(parse_u64(argv[3], "bs")),
                      static_cast<std::uint16_t>(parse_u64(argv[4], "day_lo")),
                      static_cast<std::uint16_t>(parse_u64(argv[5], "day_hi")));
    }
    if (command == "verify") return cmd_verify(path);
    if (command == "compact") return cmd_compact(path);
  } catch (const mtd::ParseError& e) {
    // Corruption diagnostics (path + byte offset) are the verify outcome.
    std::fprintf(stderr, "mtd_store: %s\n", e.what());
    return 1;
  } catch (const mtd::Error& e) {
    std::fprintf(stderr, "mtd_store: %s\n", e.what());
    return 2;
  }
  print_usage();
  return 2;
}
