// Fig. 9: the three modeling steps of the log-normal mixture model of the
// traffic-volume PDF, shown for Netflix - (a) main component + residuals,
// (b) residual selection via the smoothed derivative, (c) final model.
#include "bench_common.hpp"

#include <cmath>

#include "core/volume_model.hpp"

namespace {

using namespace mtd;
using bench::bench_dataset;

void print_fig9() {
  const MeasurementDataset& ds = bench_dataset();
  const std::size_t netflix = service_index("Netflix");
  const BinnedPdf empirical =
      ds.slice(netflix, Slice::kTotal).normalized_pdf();

  const VolumeDecomposition dec = decompose_volume_pdf(empirical);
  const VolumeModel model = VolumeModel::fit(empirical);

  print_banner(std::cout, "Figure 9 - mixture-model decomposition (Netflix)");
  std::cout << "Step 1: main log-normal fit  mu = "
            << TextTable::num(dec.main_mu, 3)
            << " (log10 MB), sigma = " << TextTable::num(dec.main_sigma, 3)
            << "\n";

  std::cout << "\nStep 2/3: retained residual peaks (<= 3, ranked by "
               "contained probability):\n";
  TextTable peaks({"center (MB)", "weight k", "sigma", "interval (MB)"});
  for (const ResidualPeak& p : model.peaks()) {
    peaks.add_row({TextTable::num(std::pow(10.0, p.mu), 2),
                   TextTable::num(p.k, 4), TextTable::num(p.sigma, 3),
                   TextTable::num(std::pow(10.0, p.lo), 2) + " - " +
                       TextTable::num(std::pow(10.0, p.hi), 2)});
  }
  peaks.print(std::cout);

  const BinnedPdf reconstructed = model.discretize(empirical.axis());
  std::cout << "\nFinal model F~ vs measurement (Eq. 5), EMD = "
            << TextTable::sci(model.emd_against(empirical), 2) << ":\n";
  TextTable curves({"volume (MB)", "measured", "main fit", "residual",
                    "final model"});
  for (std::size_t i = 0; i < empirical.size(); i += 8) {
    if (empirical[i] < 1e-4 && reconstructed[i] < 1e-4) continue;
    const double mb = std::pow(10.0, empirical.axis().center(i));
    curves.add_row({TextTable::num(mb, mb < 1 ? 3 : 1),
                    TextTable::num(empirical[i], 4),
                    TextTable::num(dec.main_fit[i], 4),
                    TextTable::num(dec.residual[i], 4),
                    TextTable::num(reconstructed[i], 4)});
  }
  curves.print(std::cout);
  std::cout << "\nShape check: transient-session peak at a few MB, main "
               "trend through the tens-of-MB bulk, knee near the planted "
               "240 MB mode (paper: full-episode drop after ~200 MB).\n";
}

void bm_decompose(benchmark::State& state) {
  const MeasurementDataset& ds = bench_dataset();
  const BinnedPdf pdf =
      ds.slice(service_index("Netflix"), Slice::kTotal).normalized_pdf();
  for (auto _ : state) {
    benchmark::DoNotOptimize(decompose_volume_pdf(pdf));
  }
}
BENCHMARK(bm_decompose);

void bm_volume_model_fit(benchmark::State& state) {
  const MeasurementDataset& ds = bench_dataset();
  const BinnedPdf pdf =
      ds.slice(service_index("Netflix"), Slice::kTotal).normalized_pdf();
  for (auto _ : state) {
    benchmark::DoNotOptimize(VolumeModel::fit(pdf));
  }
}
BENCHMARK(bm_volume_model_fit);

}  // namespace

int main(int argc, char** argv) {
  print_fig9();
  return mtd::bench::run_benchmarks(argc, argv);
}
