// Fig. 6: EMD similarity matrix of the normalized per-service volume PDFs,
// centroid hierarchical clustering and the Silhouette score across splits.
#include "bench_common.hpp"

#include "analysis/similarity.hpp"

namespace {

using namespace mtd;
using bench::bench_dataset;

void print_fig6() {
  const SimilarityAnalysis analysis = analyze_similarity(bench_dataset());

  print_banner(std::cout,
               "Figure 6a - EMD similarity matrix (top services) and clusters");
  const std::size_t show = std::min<std::size_t>(12, analysis.names.size());
  std::vector<std::string> header{"service"};
  for (std::size_t j = 0; j < show; ++j) {
    header.push_back(analysis.names[j].substr(0, 7));
  }
  TextTable matrix(header);
  for (std::size_t i = 0; i < show; ++i) {
    std::vector<std::string> row{analysis.names[i]};
    for (std::size_t j = 0; j < show; ++j) {
      row.push_back(TextTable::num(analysis.distances(i, j), 2));
    }
    matrix.add_row(std::move(row));
  }
  matrix.print(std::cout);

  std::cout << "\nThree-cluster cut (paper: A = streaming, B = short-message "
               "services, C = outliers):\n";
  TextTable clusters({"cluster", "members"});
  for (int c = 0; c < 3; ++c) {
    std::string members;
    for (std::size_t i = 0; i < analysis.names.size(); ++i) {
      if (analysis.labels3[i] == c) {
        if (!members.empty()) members += ", ";
        members += analysis.names[i];
      }
    }
    clusters.add_row({std::string(1, static_cast<char>('A' + c)), members});
  }
  clusters.print(std::cout);

  print_banner(std::cout, "Figure 6b - Silhouette score across splits");
  TextTable silhouette({"clusters k", "silhouette"});
  for (std::size_t i = 0; i < analysis.silhouette.size(); ++i) {
    silhouette.add_row({std::to_string(i + 2),
                        TextTable::num(analysis.silhouette[i], 3)});
  }
  silhouette.print(std::cout);
  std::cout << "\nPair agreement with the ground-truth streaming/interactive "
               "split (Rand index): "
            << TextTable::num(rand_index_vs_classes(analysis), 3)
            << ". The score drops and flattens beyond the macroscopic "
               "dichotomy - finer clustering is uninformative (Sec. 4.3).\n";
}

void bm_distance_matrix(benchmark::State& state) {
  const MeasurementDataset& ds = bench_dataset();
  std::vector<BinnedPdf> pdfs;
  for (std::size_t s = 0; s < ds.num_services(); ++s) {
    if (ds.slice(s, Slice::kTotal).sessions < 100) continue;
    pdfs.push_back(ds.slice(s, Slice::kTotal).normalized_pdf());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(emd_distance_matrix(pdfs));
  }
}
BENCHMARK(bm_distance_matrix);

void bm_full_similarity_analysis(benchmark::State& state) {
  const MeasurementDataset& ds = bench_dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_similarity(ds));
  }
}
BENCHMARK(bm_full_similarity_analysis);

}  // namespace

int main(int argc, char** argv) {
  print_fig6();
  return mtd::bench::run_benchmarks(argc, argv);
}
