// Fig. 5: traffic-volume PDFs F_s(x) and duration-volume pairs v_s(d) for
// six representative services (Netflix, Twitch, Deezer, Amazon, Pokemon Go,
// Waze), split into working days and weekends.
#include "bench_common.hpp"

#include <array>
#include <cmath>

#include "math/metrics.hpp"

namespace {

using namespace mtd;
using bench::bench_dataset;

constexpr std::array<const char*, 6> kServices{
    "Netflix", "Twitch", "Deezer", "Amazon", "Pokemon GO", "Waze"};

void print_profile(const char* name) {
  const MeasurementDataset& ds = bench_dataset();
  const std::size_t s = service_index(name);
  const ServiceSliceStats& workday = ds.slice(s, Slice::kWorkday);
  const ServiceSliceStats& weekend = ds.slice(s, Slice::kWeekend);
  const BinnedPdf pdf_wd = workday.normalized_pdf();
  const BinnedPdf pdf_we = weekend.normalized_pdf();

  std::cout << "\n--- " << name << " ---\n";
  std::cout << "sessions: " << workday.sessions << " (workdays) / "
            << weekend.sessions << " (weekends);  workday-vs-weekend EMD = "
            << TextTable::sci(emd(pdf_wd, pdf_we), 2)
            << " (negligible, per insight d)\n";

  TextTable pdf({"volume", "F_s workdays", "F_s weekends"});
  for (std::size_t i = 0; i < pdf_wd.size(); i += 10) {
    const double mb = std::pow(10.0, pdf_wd.axis().center(i));
    if (pdf_wd[i] < 1e-4 && pdf_we[i] < 1e-4) continue;
    pdf.add_row({TextTable::num(mb, mb < 1 ? 3 : 1) + " MB",
                 TextTable::num(pdf_wd[i], 4), TextTable::num(pdf_we[i], 4)});
  }
  pdf.print(std::cout);

  TextTable dv({"duration", "mean volume (workdays)", "(weekends)"});
  const BinnedMeanCurve& curve_wd = workday.dv_curve;
  const BinnedMeanCurve& curve_we = weekend.dv_curve;
  for (std::size_t i = 0; i < curve_wd.size(); i += 8) {
    if (curve_wd.weight(i) <= 0.0) continue;
    const double sec = std::pow(10.0, curve_wd.axis().center(i));
    dv.add_row({TextTable::num(sec, 0) + " s",
                TextTable::num(curve_wd.value(i), 2) + " MB",
                curve_we.weight(i) > 0.0
                    ? TextTable::num(curve_we.value(i), 2) + " MB"
                    : "-"});
  }
  dv.print(std::cout);
}

void print_fig5() {
  print_banner(std::cout,
               "Figure 5 - per-service volume PDFs and duration-volume pairs");
  for (const char* name : kServices) print_profile(name);
  std::cout << "\nShape checks: Netflix mode near 40 MB with transient mode "
               "near 3 MB; Twitch knee far right (~800 MB); Deezer twin "
               "song modes (3.5 / 7.6 MB); Amazon / Pokemon GO / Waze "
               "flatten below ~1 MB.\n";
}

void bm_slice_pdf_normalize(benchmark::State& state) {
  const MeasurementDataset& ds = bench_dataset();
  const std::size_t s = service_index("Netflix");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.slice(s, Slice::kWorkday).normalized_pdf());
  }
}
BENCHMARK(bm_slice_pdf_normalize);

void bm_emd_between_profiles(benchmark::State& state) {
  const MeasurementDataset& ds = bench_dataset();
  const std::size_t s = service_index("Netflix");
  const BinnedPdf a = ds.slice(s, Slice::kWorkday).normalized_pdf();
  const BinnedPdf b = ds.slice(s, Slice::kWeekend).normalized_pdf();
  for (auto _ : state) {
    benchmark::DoNotOptimize(emd(a, b));
  }
}
BENCHMARK(bm_emd_between_profiles);

}  // namespace

int main(int argc, char** argv) {
  print_fig5();
  return mtd::bench::run_benchmarks(argc, argv);
}
