// Fig. 7: Facebook Live vs Facebook - two applications with a largely
// shared user base but opposite session-level behavior (streaming vs
// short-message), proving the dichotomy is inherent to the service.
#include "bench_common.hpp"

#include <cmath>

#include "core/duration_model.hpp"
#include "math/metrics.hpp"

namespace {

using namespace mtd;
using bench::bench_dataset;

void print_fig7() {
  const MeasurementDataset& ds = bench_dataset();
  const std::size_t live = service_index("FB Live");
  const std::size_t fb = service_index("Facebook");

  print_banner(std::cout, "Figure 7 - Facebook Live vs Facebook");

  const BinnedPdf pdf_live = ds.slice(live, Slice::kTotal).normalized_pdf();
  const BinnedPdf pdf_fb = ds.slice(fb, Slice::kTotal).normalized_pdf();

  TextTable pdf({"volume", "F (FB Live)", "F (Facebook)"});
  for (std::size_t i = 0; i < pdf_live.size(); i += 10) {
    if (pdf_live[i] < 1e-4 && pdf_fb[i] < 1e-4) continue;
    const double mb = std::pow(10.0, pdf_live.axis().center(i));
    pdf.add_row({TextTable::num(mb, mb < 1 ? 3 : 1) + " MB",
                 TextTable::num(pdf_live[i], 4),
                 TextTable::num(pdf_fb[i], 4)});
  }
  pdf.print(std::cout);

  const DurationModel dm_live =
      DurationModel::fit(ds.slice(live, Slice::kTotal).dv_curve);
  const DurationModel dm_fb =
      DurationModel::fit(ds.slice(fb, Slice::kTotal).dv_curve);

  std::cout << "\nPower-law exponents: FB Live beta = "
            << TextTable::num(dm_live.beta(), 2)
            << " (super-linear, streaming cluster A), Facebook beta = "
            << TextTable::num(dm_fb.beta(), 2)
            << " (sub-linear, short-message cluster B).\n";
  std::cout << "Inter-PDF EMD(FB Live, Facebook) = "
            << TextTable::num(emd(pdf_live.centered(), pdf_fb.centered()), 3)
            << " - service nature, not user base, drives the dichotomy.\n";
}

void bm_duration_fit_pair(benchmark::State& state) {
  const MeasurementDataset& ds = bench_dataset();
  const std::size_t live = service_index("FB Live");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DurationModel::fit(ds.slice(live, Slice::kTotal).dv_curve));
  }
}
BENCHMARK(bm_duration_fit_pair);

}  // namespace

int main(int argc, char** argv) {
  print_fig7();
  return mtd::bench::run_benchmarks(argc, argv);
}
