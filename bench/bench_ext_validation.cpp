// Extension - model validation beyond the paper's EMD criterion:
//  - the implied average-throughput distributions (the third session-level
//    statistic of Sec. 1) compared between models and ground truth,
//  - Kolmogorov-Smirnov goodness-of-fit of model-sampled volumes,
//  - BS-level aggregates derived from the session-level models (the bridge
//    to the BS-level modeling literature of Fig. 1).
#include "bench_common.hpp"

#include <cmath>

#include "analysis/bs_level.hpp"
#include "analysis/throughput.hpp"
#include "math/ks_test.hpp"
#include "math/metrics.hpp"

namespace {

using namespace mtd;
using bench::bench_registry;

void print_throughput_validation() {
  print_banner(std::cout,
               "Extension - implied average-throughput distributions");
  TextTable table({"service", "median (truth)", "median (model)",
                   "p95 (truth)", "p95 (model)", "EMD"});
  Rng rng(1);
  for (const char* name :
       {"Netflix", "Twitch", "Facebook", "Waze", "Youtube"}) {
    const std::size_t s = service_index(name);
    const ServiceModel& model = bench_registry().by_name(name);
    const ThroughputProfile truth = empirical_throughput(s, 40000, rng);
    const ThroughputProfile modeled = model_throughput(model, 40000, rng);
    table.add_row({name, TextTable::num(truth.median_mbps, 3) + " Mbps",
                   TextTable::num(modeled.median_mbps, 3) + " Mbps",
                   TextTable::num(truth.p95_mbps, 2) + " Mbps",
                   TextTable::num(modeled.p95_mbps, 2) + " Mbps",
                   TextTable::num(emd(truth.pdf, modeled.pdf), 3)});
  }
  table.print(std::cout);
  std::cout << "Reading: volume-mixture + inverse-power-law sampling "
               "reproduces the throughput distribution each service "
               "implies, without ever fitting throughput directly.\n";
}

void print_ks_validation() {
  print_banner(std::cout, "Extension - KS goodness-of-fit of sampled volumes");
  TextTable table({"service", "KS statistic", "p-value", "verdict"});
  Rng rng(2);
  for (const char* name : {"Facebook", "Deezer", "Amazon"}) {
    const ServiceModel& model = bench_registry().by_name(name);
    // Model self-consistency: sampled volumes vs the model's own CDF.
    std::vector<double> samples;
    for (int i = 0; i < 1500; ++i) {
      samples.push_back(model.sample(rng).volume_mb);
    }
    const auto& mixture = model.volume().mixture();
    const KsResult result = ks_test(
        samples, [&mixture](double x) { return mixture.cdf(x); });
    table.add_row({name, TextTable::num(result.statistic, 4),
                   TextTable::num(result.p_value, 3),
                   result.accept() ? "consistent" : "REJECTED"});
  }
  table.print(std::cout);
}

void print_bs_level() {
  print_banner(std::cout,
               "Extension - BS-level aggregates from session-level models");
  TextTable table({"decile", "daily volume", "peak minute", "day/night",
                   "circadian R^2"});
  const ModelDrawSource source(bench_registry());
  for (std::uint8_t d : {std::uint8_t{2}, std::uint8_t{5}, std::uint8_t{8}}) {
    const BsTrafficGenerator generator(
        bench_registry().arrivals().class_model(d),
        bench_registry().arrivals(), source);
    Rng rng(3);
    const BsLevelSeries series = aggregate_bs_series(generator, 2, rng);
    table.add_row({std::to_string(d),
                   TextTable::num(series.total_mb() / 1e3, 1) + " GB",
                   TextTable::num(series.peak_mb(), 1) + " MB",
                   TextTable::num(series.day_night_ratio(), 1) + "x",
                   TextTable::num(circadian_agreement(series), 2)});
  }
  table.print(std::cout);
  std::cout << "Reading: aggregating the session-level generator yields the "
               "familiar BS-level circadian series (Fig. 1's coarsest "
               "modeling tier) for free.\n";
}

void bm_throughput_profile(benchmark::State& state) {
  const ServiceModel& model = bench_registry().by_name("Netflix");
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model_throughput(model, 5000, rng));
  }
}
BENCHMARK(bm_throughput_profile)->Unit(benchmark::kMillisecond);

void bm_ks_two_sample(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.normal());
    b.push_back(rng.normal());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ks_test(a, b));
  }
}
BENCHMARK(bm_ks_two_sample);

}  // namespace

int main(int argc, char** argv) {
  print_throughput_validation();
  print_ks_validation();
  print_bs_level();
  return mtd::bench::run_benchmarks(argc, argv);
}
