// Fig. 8: boxplots of session-level differences across services ("Apps"),
// day types, regions, cities and RATs - EMD for the volume PDFs (a, b) and
// SED for the duration-volume pairs (c, d).
#include "bench_common.hpp"

#include "analysis/invariance.hpp"

namespace {

using namespace mtd;
using bench::bench_dataset;

void print_boxplots(const std::string& title,
                    const std::vector<DistanceSample>& samples) {
  print_banner(std::cout, title);
  TextTable table({"tag", "n", "p5", "q1", "median", "q3", "p95"});
  for (const DistanceSample& sample : samples) {
    const BoxplotStats box = sample.boxplot();
    table.add_row({sample.tag, std::to_string(sample.values.size()),
                   TextTable::sci(box.p5, 2), TextTable::sci(box.q1, 2),
                   TextTable::sci(box.median, 2), TextTable::sci(box.q3, 2),
                   TextTable::sci(box.p95, 2)});
  }
  table.print(std::cout);
}

void print_fig8() {
  const InvarianceReport report = analyze_invariance(bench_dataset());
  print_boxplots("Figure 8a/8b - traffic-volume PDF differences (EMD)",
                 report.pdf_distances);
  print_boxplots("Figure 8c/8d - duration-volume pair differences (SED)",
                 report.curve_distances);

  const double apps = report.pdf_distances[0].median();
  std::cout << "\nShape check: Days/Regions/Cities/RATs medians vs Apps "
               "median (" << TextTable::sci(apps, 2) << "):";
  for (std::size_t i = 1; i <= 4; ++i) {
    std::cout << "  " << report.pdf_distances[i].tag << " = "
              << TextTable::num(100.0 * report.pdf_distances[i].median() /
                                    apps,
                                1)
              << "%";
  }
  std::cout << "\n(The paper finds all four negligible against inter-service "
               "heterogeneity - insight d.)\n";
}

void bm_invariance_analysis(benchmark::State& state) {
  const MeasurementDataset& ds = bench_dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_invariance(ds));
  }
}
BENCHMARK(bm_invariance_analysis);

}  // namespace

int main(int argc, char** argv) {
  print_fig8();
  return mtd::bench::run_benchmarks(argc, argv);
}
