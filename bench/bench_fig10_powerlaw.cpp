// Fig. 10: power-law exponents beta_s of the fitted duration-volume models,
// with R^2 - video streaming dominates super-linear behavior.
#include "bench_common.hpp"

#include "core/duration_model.hpp"

namespace {

using namespace mtd;
using bench::bench_dataset;

void print_fig10() {
  const MeasurementDataset& ds = bench_dataset();
  const auto& catalog = service_catalog();

  print_banner(std::cout, "Figure 10 - power-law exponents of v_s(d)");
  TextTable table({"service", "class", "beta (fit)", "beta (planted)",
                   "alpha", "R^2", "regime"});
  std::size_t streaming_super = 0, streaming_total = 0;
  std::size_t interactive_sub = 0, interactive_total = 0;
  double beta_min = 1e9, beta_max = -1e9;

  for (std::size_t s = 0; s < ds.num_services(); ++s) {
    const ServiceSliceStats& stats = ds.slice(s, Slice::kTotal);
    if (stats.sessions < 500) continue;
    const DurationModel model = DurationModel::fit(stats.dv_curve);
    beta_min = std::min(beta_min, model.beta());
    beta_max = std::max(beta_max, model.beta());
    if (catalog[s].cls == ServiceClass::kStreaming) {
      ++streaming_total;
      if (model.is_super_linear()) ++streaming_super;
    } else if (catalog[s].cls == ServiceClass::kInteractive) {
      ++interactive_total;
      if (!model.is_super_linear()) ++interactive_sub;
    }
    table.add_row({catalog[s].name, std::string(to_string(catalog[s].cls)),
                   TextTable::num(model.beta(), 2),
                   TextTable::num(catalog[s].beta, 2),
                   TextTable::num(model.alpha(), 4),
                   TextTable::num(model.r_squared(), 2),
                   model.is_super_linear() ? "super-linear" : "sub-linear"});
  }
  table.print(std::cout);

  std::cout << "\nExponent range: " << TextTable::num(beta_min, 2) << " - "
            << TextTable::num(beta_max, 2) << " (paper: 0.1 - 1.8).\n";
  std::cout << "Streaming services super-linear: " << streaming_super << "/"
            << streaming_total << "; interactive sub-linear: "
            << interactive_sub << "/" << interactive_total
            << " (paper: video streaming dominates super-linear).\n";
}

void bm_power_law_fit(benchmark::State& state) {
  const MeasurementDataset& ds = bench_dataset();
  const BinnedMeanCurve& curve =
      ds.slice(service_index("Netflix"), Slice::kTotal).dv_curve;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DurationModel::fit(curve));
  }
}
BENCHMARK(bm_power_law_fit);

}  // namespace

int main(int argc, char** argv) {
  print_fig10();
  return mtd::bench::run_benchmarks(argc, argv);
}
