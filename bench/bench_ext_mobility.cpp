// Extension study (paper Sec. 7 future work): impact of user mobility on
// the per-BS session-level statistics, modeled with full handover chains,
// and the packet-level expansion bridging to fine-grained simulators.
#include "bench_common.hpp"

#include <cmath>

#include "math/metrics.hpp"
#include "mobility/per_bs_view.hpp"
#include "packet/packet_schedule.hpp"

namespace {

using namespace mtd;

void print_mobility_study() {
  print_banner(std::cout,
               "Extension - per-BS statistics under full handover chains");

  TextTable table({"service", "mobility mix", "mean segments/session",
                   "partial obs.", "EMD vs one-shot substrate"});
  const HandoverChainGenerator mobility;  // default 70/18/12 regime mix
  for (const char* name : {"Netflix", "Youtube", "Facebook", "Waze"}) {
    const ServiceProfile& profile = service_catalog()[service_index(name)];
    Rng rng_a(1), rng_b(1);
    const PerBsObservation chains =
        observe_per_bs(profile, mobility, 40000, rng_a);
    const PerBsObservation substrate =
        observe_per_bs_substrate(profile, 40000, rng_b);

    std::vector<HandoverChain> sample;
    Rng rng_c(2);
    const Log10NormalMixture mixture = profile.volume_mixture();
    for (int i = 0; i < 5000; ++i) {
      const double volume = std::max(mixture.sample(rng_c), 1e-4);
      const double duration = std::clamp(
          std::pow(volume / profile.alpha(), 1.0 / profile.beta), 1.0,
          21600.0);
      sample.push_back(mobility.split(volume, duration, rng_c));
    }
    const ChainStatistics stats = summarize_chains(sample);

    table.add_row({name, "70/18/12",
                   TextTable::num(stats.mean_segments, 2),
                   TextTable::pct(chains.partial_fraction, 1),
                   TextTable::num(emd(chains.volume_pdf, substrate.volume_pdf),
                                  3)});
  }
  table.print(std::cout);
  std::cout << "\nReading: long streaming sessions fragment into many per-BS "
               "segments under vehicular mobility, inflating the transient "
               "lobe beyond the one-shot truncation the dataset substrate "
               "uses - the effect the paper defers to future work.\n";
}

void print_packet_study() {
  print_banner(std::cout,
               "Extension - packet-level expansion of model sessions");
  const PacketScheduleGenerator packets;
  const ServiceModel& netflix = bench::bench_registry().by_name("Netflix");
  Rng rng(3);
  TextTable table({"session volume", "duration", "packets", "bursts",
                   "mean interarrival", "burstiness"});
  for (int i = 0; i < 5; ++i) {
    const ServiceModel::Draw draw = netflix.sample(rng);
    const PacketScheduleStats stats = packets.generate_stream(
        draw.volume_mb, draw.duration_s, rng, [](const Packet&) {});
    table.add_row({TextTable::num(draw.volume_mb, 1) + " MB",
                   TextTable::num(draw.duration_s, 0) + " s",
                   std::to_string(stats.packets),
                   std::to_string(stats.bursts),
                   TextTable::num(1e3 * stats.mean_interarrival_s, 2) + " ms",
                   TextTable::num(stats.burstiness, 1) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nSession-level statistics (volume, duration, service mix) "
               "come from the fitted models; within-session packet timing "
               "follows the packet-level literature - the complementarity "
               "the paper argues for in Sec. 1.\n";
}

void bm_chain_split(benchmark::State& state) {
  const HandoverChainGenerator mobility;
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobility.split(40.0, 600.0, rng));
  }
}
BENCHMARK(bm_chain_split);

void bm_packet_stream(benchmark::State& state) {
  const PacketScheduleGenerator packets;
  Rng rng(5);
  for (auto _ : state) {
    std::size_t n = 0;
    packets.generate_stream(10.0, 300.0, rng,
                            [&n](const Packet&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(bm_packet_stream)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_mobility_study();
  print_packet_study();
  return mtd::bench::run_benchmarks(argc, argv);
}
