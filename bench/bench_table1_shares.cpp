// Table 1: percent contribution of each application to the total number of
// sessions and to the total traffic volume, with the coefficient of
// variation across (BS, day) cells.
#include "bench_common.hpp"

namespace {

using namespace mtd;
using bench::bench_dataset;

void print_table1() {
  const MeasurementDataset& ds = bench_dataset();
  const auto& catalog = service_catalog();
  const std::vector<double> sessions = ds.session_shares();
  const std::vector<double> traffic = ds.traffic_shares();
  const std::vector<double> session_cv = ds.session_share_cv();
  const std::vector<double> traffic_cv = ds.traffic_share_cv();

  print_banner(std::cout,
               "Table 1 - session and traffic share per application");
  TextTable table({"service", "sessions % (meas)", "CV", "sessions % (Table 1)",
                   "traffic % (meas)", "CV"});
  double mean_scv = 0.0, mean_tcv = 0.0;
  std::size_t counted = 0;
  for (std::size_t s = 0; s < ds.num_services(); ++s) {
    table.add_row({catalog[s].name, TextTable::num(100.0 * sessions[s], 2),
                   TextTable::num(session_cv[s], 2),
                   TextTable::num(catalog[s].session_share_pct, 2),
                   TextTable::num(100.0 * traffic[s], 2),
                   TextTable::num(traffic_cv[s], 2)});
    if (sessions[s] > 0.005) {
      mean_scv += session_cv[s];
      mean_tcv += traffic_cv[s];
      ++counted;
    }
  }
  table.print(std::cout);

  std::cout << "\nShape checks: measured session shares reproduce the "
               "Table-1 ground truth; mean session-share CV = "
            << TextTable::num(mean_scv / static_cast<double>(counted), 2)
            << " is stable and below the mean traffic-share CV = "
            << TextTable::num(mean_tcv / static_cast<double>(counted), 2)
            << " (the paper's argument for using session shares to break "
               "down arrivals).\n";
}

void bm_share_computation(benchmark::State& state) {
  const MeasurementDataset& ds = bench_dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.session_shares());
    benchmark::DoNotOptimize(ds.traffic_shares());
  }
}
BENCHMARK(bm_share_computation);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  return mtd::bench::run_benchmarks(argc, argv);
}
