// Fig. 13: energy consumption in a CU-DU vRAN - (b) APE of the number of
// active physical servers and of the power consumption for every traffic
// model against the measurement-driven ground truth, and (c) a power
// consumption time-series close-up.
#include "bench_common.hpp"

#include "usecases/vran.hpp"

namespace {

using namespace mtd;
using bench::bench_registry;

VranConfig paper_config() {
  VranConfig config;
  // Paper: 1 CS serving 20 ESs x 20 RUs; we scale by default to keep the
  // 5-strategy x 86400-slot simulation to tens of seconds.
  config.num_edge_sites = bench::fast_mode() ? 4 : 20;
  config.rus_per_site = bench::fast_mode() ? 4 : 20;
  config.num_days = 1;
  config.ru_decile = 5;
  config.seed = 63;
  return config;
}

void print_fig13() {
  const VranResult result = run_vran(bench_registry(), paper_config());

  print_banner(std::cout,
               "Figure 13b - APE vs measurement-driven ground truth");
  TextTable table({"strategy", "APE #PS p25", "median", "p75",
                   "APE power p25", "median", "p75", "mean power"});
  for (const VranStrategyResult& row : result.strategies) {
    table.add_row({row.name, TextTable::pct(row.ape_active_ps.q1, 1),
                   TextTable::pct(row.ape_active_ps.median, 1),
                   TextTable::pct(row.ape_active_ps.q3, 1),
                   TextTable::pct(row.ape_power.q1, 1),
                   TextTable::pct(row.ape_power.median, 1),
                   TextTable::pct(row.ape_power.q3, 1),
                   TextTable::num(row.mean_power_w / 1000.0, 2) + " kW"});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: the session-level model stays within a few "
               "percent; the raw literature benchmark (bm a) is off by "
               ">100%; the normalized variants improve but cannot match "
               "per-service session statistics.\n";

  print_banner(std::cout, "Figure 13c - power consumption over 10 minutes");
  TextTable series({"t (s)", "real (W)", "model (W)", "bm c (W)"});
  const auto& real = result.strategies[0].power_series_w;
  const auto& model = result.strategies[1].power_series_w;
  const auto& bmc = result.strategies[4].power_series_w;
  for (std::size_t t = 0; t < real.size(); t += 30) {
    series.add_row({std::to_string(t), TextTable::num(real[t], 0),
                    TextTable::num(model[t], 0), TextTable::num(bmc[t], 0)});
  }
  series.print(std::cout);
}

void bm_first_fit_decreasing(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> loads(static_cast<std::size_t>(state.range(0)));
  for (double& l : loads) l = rng.uniform(0.0, 60.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(first_fit_decreasing(loads, 100.0));
  }
}
BENCHMARK(bm_first_fit_decreasing)->Arg(16)->Arg(100)->Arg(400);

}  // namespace

int main(int argc, char** argv) {
  print_fig13();
  return mtd::bench::run_benchmarks(argc, argv);
}
