// Hot-path micro-benchmarks: the O(1) sampling kernels and the
// zero-allocation serializers against the implementations they replaced.
//
// Each section times the optimized kernel and a faithful local
// reimplementation of the retired baseline over the same inputs:
//   service_draw     alias table vs lower_bound over the Table-1 share CDF
//   mixture_draw     alias component pick vs cumulative-weight linear scan
//   circadian_minute per-minute activity LUT vs direct evaluation
//   pow10            exp2-based base-10 exponential vs std::pow(10, x)
//   uniform_block    4-lane BlockRng block fill vs per-draw scalar Rng
//   pow10_block      vectorized exp2 polynomial block vs scalar pow10_fast
//   alias_sample_block batched alias lookup vs per-element pick
//   minute_batch_fill  SoA minute kernel vs the scalar session draw chain
//   service_model_block core fitted-model SoA draw vs ServiceModel::sample
//   mixture_scan_k*  in-register CDF scan vs alias pick at k components
//                    (the scan wins below the k<=4 crossover the batch
//                    kernel uses; the alias table stays for large tables)
//   ndjson_serialize hand-rolled buffered writer vs JsonObject-per-event
//   binary_serialize patched-length single buffer vs frame-per-event
//   csv_serialize    to_chars rows vs ofstream operator<<
//
// One JSON line per row goes to stdout and the full report to
// BENCH_hotpaths.json (schema: {bench, fast, rows: [{name, unit,
// baseline_per_s, optimized_per_s, speedup}]}) for CI trend tracking.
// MTD_BENCH_FAST shrinks iteration counts for smoke runs. google-benchmark
// timings of the same kernels follow the JSON lines.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/alias_table.hpp"
#include "common/batch_rng/block_rng.hpp"
#include "common/batch_rng/vec_math.hpp"
#include "common/time_utils.hpp"
#include "core/service_model.hpp"
#include "dataset/generator.hpp"
#include "dataset/service_catalog.hpp"
#include "dataset/trace_io.hpp"
#include "events/event_sink.hpp"
#include "io/json.hpp"

namespace {

using namespace mtd;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string temp_file(const char* name) {
  return std::string("/tmp/") + name;
}

/// One comparison row; `per_s` is ops (draws, events) per second.
JsonObject make_row(const char* name, const char* unit, double baseline_per_s,
                    double optimized_per_s) {
  JsonObject row;
  row.emplace("name", name);
  row.emplace("unit", unit);
  row.emplace("baseline_per_s", baseline_per_s);
  row.emplace("optimized_per_s", optimized_per_s);
  row.emplace("speedup",
              baseline_per_s > 0.0 ? optimized_per_s / baseline_per_s : 0.0);
  return row;
}

void print_row(const JsonObject& row) {
  std::cout << Json(JsonObject(row)).dump() << "\n";
}

// ---------------------------------------------------------------------------
// sampling kernels

std::vector<double> share_cdf() {
  const std::vector<double> shares = normalized_session_shares();
  std::vector<double> cdf(shares.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    acc += shares[i];
    cdf[i] = acc;
  }
  cdf.back() = 1.0;
  return cdf;
}

/// Pre-drawn uniforms so the kernel comparisons time only the selection,
/// not the shared RNG cost. 4096 values defeat the branch predictor
/// without falling out of L1.
std::vector<double> uniform_grid(std::uint64_t seed) {
  std::vector<double> us(4096);
  Rng rng(seed);
  for (double& u : us) u = rng.uniform();
  return us;
}

/// Best ops/s over `reps` runs of `loop` (min-time discipline: the fastest
/// rep is the least perturbed by whatever else the host is doing).
template <typename F>
double best_rate(std::uint64_t iters, int reps, F&& loop) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    loop();
    const double rate = static_cast<double>(iters) / seconds_since(t0);
    best = std::max(best, rate);
  }
  return best;
}

JsonObject bench_service_draw(std::uint64_t iters) {
  const std::vector<double> cdf = share_cdf();
  const AliasTable alias{std::span<const double>(normalized_session_shares())};
  const std::vector<double> us = uniform_grid(123);

  std::uint64_t sink = 0;
  const double base = best_rate(iters, 3, [&] {
    for (std::uint64_t i = 0; i < iters; ++i) {
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), us[i & 4095]);
      sink += static_cast<std::size_t>(it - cdf.begin());
    }
  });
  const double opt = best_rate(iters, 3, [&] {
    for (std::uint64_t i = 0; i < iters; ++i) sink += alias.pick(us[i & 4095]);
  });

  benchmark::DoNotOptimize(sink);
  return make_row("service_draw", "draws", base, opt);
}

JsonObject bench_mixture_draw(std::uint64_t iters) {
  // The largest mixture in the catalog (main + up to three residual
  // peaks): the case where component selection costs the most.
  std::size_t widest = 0;
  for (std::size_t s = 0; s < service_catalog().size(); ++s) {
    if (service_catalog()[s].volume_mixture().size() >
        service_catalog()[widest].volume_mixture().size()) {
      widest = s;
    }
  }
  const Log10NormalMixture mixture = service_catalog()[widest].volume_mixture();
  const auto components = mixture.components();
  const std::vector<double> us = uniform_grid(456);

  std::uint64_t sink = 0;
  const double base = best_rate(iters, 3, [&] {
    for (std::uint64_t i = 0; i < iters; ++i) {
      // The retired selection: cumulative linear scan over the weights.
      double u = us[i & 4095];
      std::size_t pick = components.size() - 1;
      for (std::size_t c = 0; c < components.size(); ++c) {
        u -= components[c].weight;
        if (u <= 0.0) {
          pick = c;
          break;
        }
      }
      sink += pick;
    }
  });
  const double opt = best_rate(iters, 3, [&] {
    for (std::uint64_t i = 0; i < iters; ++i) {
      sink += mixture.component_alias().pick(us[i & 4095]);
    }
  });

  benchmark::DoNotOptimize(sink);
  return make_row("mixture_draw", "picks", base, opt);
}

JsonObject bench_circadian(std::uint64_t sweeps) {
  double sink = 0.0;
  const auto t0 = Clock::now();
  for (std::uint64_t s = 0; s < sweeps; ++s) {
    for (std::size_t m = 0; m < kMinutesPerDay; ++m) {
      sink += circadian_activity(m);
    }
  }
  const double base_s = seconds_since(t0);

  const auto t1 = Clock::now();
  for (std::uint64_t s = 0; s < sweeps; ++s) {
    for (std::size_t m = 0; m < kMinutesPerDay; ++m) {
      sink += circadian_activity_lut(m);
    }
  }
  const double opt_s = seconds_since(t1);

  benchmark::DoNotOptimize(sink);
  const double evals = static_cast<double>(sweeps * kMinutesPerDay);
  return make_row("circadian_minute", "evals", evals / base_s, evals / opt_s);
}

JsonObject bench_pow10(std::uint64_t iters) {
  // Pre-drawn exponents so both loops time only the exponential.
  std::vector<double> xs(4096);
  Rng rng(789);
  for (double& x : xs) x = rng.normal(0.5, 1.2);

  double sink = 0.0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    sink += std::pow(10.0, xs[i & 4095]);
  }
  const double base_s = seconds_since(t0);

  const auto t1 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    sink += pow10_fast(xs[i & 4095]);
  }
  const double opt_s = seconds_since(t1);

  benchmark::DoNotOptimize(sink);
  return make_row("pow10", "evals", static_cast<double>(iters) / base_s,
                  static_cast<double>(iters) / opt_s);
}

// ---------------------------------------------------------------------------
// SoA batch kernels (common/batch_rng; DESIGN.md sec. 16)
//
// Each row compares the scalar per-draw path the engine's kScalar kernel
// uses against the batched SoA form the kBatch kernel uses, per element.
// The primitive rows (uniform_block, pow10_block) can land near or below
// 1.0 on the default x86-64 target: 2-wide SSE2 vectors barely beat
// scalar xoshiro / libm exp2, and the batch forms additionally buy
// digest portability (no libm) and lane-stable streams. The composed row
// (minute_batch_fill) is where the SoA layout pays — one pass over fused
// columns instead of a per-session draw chain.

JsonObject bench_uniform_block(std::uint64_t iters) {
  constexpr std::size_t kBlock = 1024;
  std::vector<double> out(kBlock);
  const std::uint64_t blocks = std::max<std::uint64_t>(1, iters / kBlock);
  const std::uint64_t draws = blocks * kBlock;

  double sink = 0.0;
  const double base = best_rate(draws, 3, [&] {
    Rng rng(11);
    for (std::uint64_t b = 0; b < blocks; ++b) {
      for (std::size_t i = 0; i < kBlock; ++i) out[i] = rng.uniform();
      sink += out[kBlock - 1];
    }
  });
  const double opt = best_rate(draws, 3, [&] {
    BlockRng rng(Rng(11), 0);
    for (std::uint64_t b = 0; b < blocks; ++b) {
      rng.uniform_block(out.data(), kBlock);
      sink += out[kBlock - 1];
    }
  });

  benchmark::DoNotOptimize(sink);
  return make_row("uniform_block", "draws", base, opt);
}

JsonObject bench_pow10_block(std::uint64_t iters) {
  std::vector<double> xs(4096);
  std::vector<double> out(4096);
  Rng rng(790);
  for (double& x : xs) x = rng.normal(0.5, 1.2);
  const std::uint64_t sweeps = std::max<std::uint64_t>(1, iters / xs.size());
  const std::uint64_t evals = sweeps * xs.size();

  double sink = 0.0;
  const double base = best_rate(evals, 3, [&] {
    for (std::uint64_t s = 0; s < sweeps; ++s) {
      for (std::size_t i = 0; i < xs.size(); ++i) out[i] = pow10_fast(xs[i]);
      sink += out[0];
    }
  });
  const double opt = best_rate(evals, 3, [&] {
    for (std::uint64_t s = 0; s < sweeps; ++s) {
      vec::pow10_block(xs.data(), out.data(), xs.size());
      sink += out[0];
    }
  });

  benchmark::DoNotOptimize(sink);
  return make_row("pow10_block", "evals", base, opt);
}

JsonObject bench_alias_sample_block(std::uint64_t iters) {
  const AliasTable alias{std::span<const double>(normalized_session_shares())};
  const std::vector<double> us = uniform_grid(321);
  std::vector<std::uint32_t> out(us.size());
  const std::uint64_t sweeps = std::max<std::uint64_t>(1, iters / us.size());
  const std::uint64_t picks = sweeps * us.size();

  std::uint64_t sink = 0;
  const double base = best_rate(picks, 3, [&] {
    for (std::uint64_t s = 0; s < sweeps; ++s) {
      for (std::size_t i = 0; i < us.size(); ++i) {
        out[i] = static_cast<std::uint32_t>(alias.pick(us[i]));
      }
      sink += out[0];
    }
  });
  const double opt = best_rate(picks, 3, [&] {
    for (std::uint64_t s = 0; s < sweeps; ++s) {
      alias.sample_block(us.data(), out.data(), us.size());
      sink += out[0];
    }
  });

  benchmark::DoNotOptimize(sink);
  return make_row("alias_sample_block", "picks", base, opt);
}

/// One full generated day of one busy BS, per session: the scalar
/// per-session draw chain (kScalar's inner loop) vs the SoA minute fill
/// (kBatch). Both sides sample the identical per-minute session counts;
/// the streams differ by design (BlockRng v1 vs the scalar stream).
JsonObject bench_minute_fill(bool fast) {
  TraceConfig trace;
  trace.num_days = 1;
  trace.seed = 20231024;
  const Network& network = mtd::bench::bench_network();
  // The busiest BS: decile 9 has the largest blocks, where the SoA path
  // matters most.
  std::size_t busiest = 0;
  for (std::size_t i = 0; i < network.size(); ++i) {
    if (network[i].decile > network[busiest].decile) busiest = i;
  }
  const TraceGenerator generator(network, trace);
  const std::size_t day = 0;
  const BaseStation scaled = generator.day_scaled(network[busiest], day);

  // Per-minute counts from the batch path, reused for both sides so the
  // comparison times sampling, not arrival draws.
  MinuteBlock block;
  std::vector<std::uint32_t> counts(kMinutesPerDay);
  std::uint64_t day_sessions = 0;
  for (std::size_t m = 0; m < kMinutesPerDay; ++m) {
    generator.sample_minute_block(scaled, day, m, block);
    counts[m] = block.count;
    day_sessions += block.count;
  }

  const std::uint64_t sweeps = fast ? 2 : 10;
  const std::uint64_t sessions = sweeps * day_sessions;

  double sink = 0.0;
  const double base = best_rate(sessions, 3, [&] {
    for (std::uint64_t s = 0; s < sweeps; ++s) {
      Rng rng = generator.bs_day_rng(scaled, day);
      for (std::size_t m = 0; m < kMinutesPerDay; ++m) {
        for (std::uint32_t c = 0; c < counts[m]; ++c) {
          sink += generator.sample_session(scaled, day, m, rng).volume_mb;
        }
      }
    }
  });
  const double opt = best_rate(sessions, 3, [&] {
    for (std::uint64_t s = 0; s < sweeps; ++s) {
      for (std::size_t m = 0; m < kMinutesPerDay; ++m) {
        generator.sample_minute_block(scaled, day, m, block);
        if (block.count != 0) sink += block.volume_mb[0];
      }
    }
  });

  benchmark::DoNotOptimize(sink);
  return make_row("minute_batch_fill", "sessions", base, opt);
}

/// Component-selection crossover (the PR 5 alias regression, resolved):
/// for k-component mixtures, an in-register branchless CDF scan vs an
/// alias-table pick. The batch kernel scans when k <= 4 (every catalog
/// mixture) and keeps the alias table for large tables — these rows show
/// the crossover: speedup > 1 (scan wins) at small k, < 1 at large k.
JsonObject bench_mixture_scan(std::size_t k, std::uint64_t iters) {
  // Skewed weights like real mixtures (dominant main component).
  std::vector<double> weights(k);
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) total += weights[i] = 1.0 / (i + 1.0);
  for (double& w : weights) w /= total;
  const AliasTable alias{std::span<const double>(weights)};
  std::vector<double> cum(k);
  double acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) cum[i] = acc += weights[i];
  cum.back() = 2.0;  // padded sentinel, as in SessionBlockKernel
  const std::vector<double> us = uniform_grid(111 + k);

  std::uint64_t sink = 0;
  const double base = best_rate(iters, 3, [&] {
    for (std::uint64_t i = 0; i < iters; ++i) {
      sink += alias.pick(us[i & 4095]);
    }
  });
  const double opt = best_rate(iters, 3, [&] {
    for (std::uint64_t i = 0; i < iters; ++i) {
      const double u = us[i & 4095];
      std::size_t pick = 0;
      for (std::size_t j = 0; j + 1 < k; ++j) pick += u > cum[j] ? 1 : 0;
      sink += pick;
    }
  });

  benchmark::DoNotOptimize(sink);
  const std::string name = "mixture_scan_k" + std::to_string(k);
  return make_row(name.c_str(), "picks", base, opt);
}

/// The core-layer fitted-model draw, scalar ServiceModel::sample vs the
/// SoA sample_block (uniform + Box-Muller blocks, mixture sample_block,
/// batched inverse power law). The block path pays one extra normal per
/// draw (the jitter lane is always consumed) and still wins on the fused
/// column loops.
JsonObject bench_service_model_block(bool fast) {
  VolumeModel volume(Log10Normal(1.2, 0.55),
                     {ResidualPeak{0.08, 2.6, 0.12, 2.2, 3.0}});
  const ServiceModel model("bench", std::move(volume),
                           DurationModel(2.5, 1.3, 0.99), 0.05);
  constexpr double kJitter = 0.08;
  constexpr std::size_t kBlock = 512;
  const std::size_t blocks = fast ? 8 : 64;
  const std::uint64_t draws = blocks * kBlock;

  double vol_sink = 0.0;
  const double base = best_rate(draws, 3, [&] {
    Rng rng(4242);
    for (std::uint64_t i = 0; i < draws; ++i) {
      const ServiceModel::Draw draw = model.sample(rng, kJitter);
      vol_sink += draw.volume_mb - draw.duration_s;
    }
  });

  std::vector<double> volume_col(kBlock);
  std::vector<double> duration_col(kBlock);
  ServiceModel::BlockScratch scratch;
  const Rng base_rng(4242);
  const double opt = best_rate(draws, 3, [&] {
    for (std::size_t b = 0; b < blocks; ++b) {
      BlockRng rng(base_rng, b);
      model.sample_block(rng, volume_col.data(), duration_col.data(), kBlock,
                         kJitter, scratch);
      vol_sink += volume_col[0] - duration_col[kBlock - 1];
    }
  });

  benchmark::DoNotOptimize(vol_sink);
  return make_row("service_model_block", "draws", base, opt);
}

// ---------------------------------------------------------------------------
// serialization

std::vector<StreamEvent> serialization_events(std::size_t count) {
  std::vector<StreamEvent> events;
  events.reserve(count);
  Rng rng(20231024);
  const std::size_t services = service_catalog().size();
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 64 == 0) {
      events.push_back(StreamEvent{
          {static_cast<std::uint32_t>(i % 100), 1,
           static_cast<std::uint16_t>(i % kMinutesPerDay), i},
          MinuteEvent{static_cast<std::uint32_t>(i % 37)}});
      continue;
    }
    Session s;
    s.bs = static_cast<std::uint32_t>(i % 100);
    s.service = static_cast<std::uint16_t>(i % services);
    s.day = 1;
    s.minute_of_day = static_cast<std::uint16_t>(i % kMinutesPerDay);
    s.transient = (i % 5) == 0;
    s.volume_mb = rng.log10_normal(0.5, 1.2);
    s.duration_s = 1.0 + rng.uniform() * 21599.0;
    events.push_back(
        StreamEvent{{s.bs, 1, s.minute_of_day, i}, SessionEvent{s}});
  }
  return events;
}

/// The retired NDJSON encoding: one JsonObject (std::map) and one dump
/// string per event, written line-by-line through the stream.
void json_era_ndjson(const std::vector<StreamEvent>& events,
                     std::ofstream& out) {
  for (const StreamEvent& event : events) {
    JsonObject obj;
    obj.emplace("kind", to_string(event.kind()));
    obj.emplace("bs", static_cast<double>(event.key.bs));
    obj.emplace("day", static_cast<double>(event.key.day));
    obj.emplace("minute", static_cast<double>(event.key.minute_of_day));
    obj.emplace("seq", static_cast<double>(event.key.seq));
    if (event.kind() == EventKind::kMinute) {
      obj.emplace("arrivals",
                  static_cast<double>(
                      std::get<MinuteEvent>(event.payload).arrivals));
    } else {
      const Session& s = std::get<SessionEvent>(event.payload).session;
      obj.emplace("service", static_cast<double>(s.service));
      obj.emplace("transient", s.transient);
      obj.emplace("volume_mb", s.volume_mb);
      obj.emplace("duration_s", s.duration_s);
    }
    out << Json(std::move(obj)).dump() << '\n';
  }
}

JsonObject bench_ndjson(const std::vector<StreamEvent>& events) {
  const std::string base_path = temp_file("mtd_bench_base.ndjson");
  const std::string opt_path = temp_file("mtd_bench_opt.ndjson");

  const auto t0 = Clock::now();
  {
    std::ofstream out(base_path, std::ios::binary | std::ios::trunc);
    json_era_ndjson(events, out);
  }
  const double base_s = seconds_since(t0);

  const auto t1 = Clock::now();
  {
    NdjsonEventWriter writer(opt_path);
    for (const StreamEvent& e : events) writer.on_event(e);
    writer.close();
  }
  const double opt_s = seconds_since(t1);

  std::remove(base_path.c_str());
  std::remove(opt_path.c_str());
  const double n = static_cast<double>(events.size());
  return make_row("ndjson_serialize", "events", n / base_s, n / opt_s);
}

/// The retired binary framing: payload into a reused buffer but a fresh
/// frame string and two stream writes per event.
void frame_era_binary(const std::vector<StreamEvent>& events,
                      std::ofstream& out) {
  const auto put_u16 = [](std::string& b, std::uint16_t v) {
    b.push_back(static_cast<char>(v & 0xff));
    b.push_back(static_cast<char>((v >> 8) & 0xff));
  };
  const auto put_u32 = [](std::string& b, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      b.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  const auto put_u64 = [](std::string& b, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      b.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  const auto put_f64 = [&put_u64](std::string& b, double v) {
    put_u64(b, std::bit_cast<std::uint64_t>(v));
  };
  out.write(BinaryEventWriter::kMagic, sizeof(BinaryEventWriter::kMagic));
  std::string buf;
  for (const StreamEvent& event : events) {
    buf.clear();
    buf.push_back(static_cast<char>(event.kind()));
    put_u32(buf, event.key.bs);
    put_u16(buf, event.key.day);
    put_u16(buf, event.key.minute_of_day);
    put_u64(buf, event.key.seq);
    if (event.kind() == EventKind::kMinute) {
      put_u32(buf, std::get<MinuteEvent>(event.payload).arrivals);
    } else {
      const Session& s = std::get<SessionEvent>(event.payload).session;
      put_u16(buf, s.service);
      buf.push_back(s.transient ? 1 : 0);
      put_f64(buf, s.volume_mb);
      put_f64(buf, s.duration_s);
    }
    std::string frame;
    put_u32(frame, static_cast<std::uint32_t>(buf.size()));
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
}

JsonObject bench_binary(const std::vector<StreamEvent>& events) {
  const std::string base_path = temp_file("mtd_bench_base.bin");
  const std::string opt_path = temp_file("mtd_bench_opt.bin");

  const auto t0 = Clock::now();
  {
    std::ofstream out(base_path, std::ios::binary | std::ios::trunc);
    frame_era_binary(events, out);
  }
  const double base_s = seconds_since(t0);

  const auto t1 = Clock::now();
  {
    BinaryEventWriter writer(opt_path);
    for (const StreamEvent& e : events) writer.on_event(e);
    writer.close();
  }
  const double opt_s = seconds_since(t1);

  std::remove(base_path.c_str());
  std::remove(opt_path.c_str());
  const double n = static_cast<double>(events.size());
  return make_row("binary_serialize", "events", n / base_s, n / opt_s);
}

JsonObject bench_csv(const std::vector<StreamEvent>& events) {
  const std::string base_path = temp_file("mtd_bench_base.csv");
  const std::string opt_path = temp_file("mtd_bench_opt.csv");

  std::uint64_t sessions = 0;
  const auto t0 = Clock::now();
  {
    std::ofstream out(base_path, std::ios::binary | std::ios::trunc);
    out << "bs,service,day,minute_of_day,volume_mb,duration_s\n";
    for (const StreamEvent& e : events) {
      if (e.kind() != EventKind::kSession) continue;
      const Session& s = std::get<SessionEvent>(e.payload).session;
      const std::string& name = service_catalog()[s.service].name;
      out << s.bs << ',';
      if (name.find(',') != std::string::npos) {
        out << '"' << name << '"';
      } else {
        out << name;
      }
      out << ',' << s.day << ',' << s.minute_of_day << ',' << s.volume_mb
          << ',' << s.duration_s << '\n';
      ++sessions;
    }
  }
  const double base_s = seconds_since(t0);

  const auto t1 = Clock::now();
  {
    SessionCsvWriter writer(opt_path);
    for (const StreamEvent& e : events) {
      if (e.kind() != EventKind::kSession) continue;
      writer.on_session(std::get<SessionEvent>(e.payload).session);
    }
    writer.close();
  }
  const double opt_s = seconds_since(t1);

  std::remove(base_path.c_str());
  std::remove(opt_path.c_str());
  const double n = static_cast<double>(sessions);
  return make_row("csv_serialize", "sessions", n / base_s, n / opt_s);
}

// ---------------------------------------------------------------------------
// google-benchmark timings of the same kernels

void BM_ServiceDrawAlias(benchmark::State& state) {
  const AliasTable alias{std::span<const double>(normalized_session_shares())};
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(alias.sample(rng));
}
BENCHMARK(BM_ServiceDrawAlias);

void BM_ServiceDrawLowerBound(benchmark::State& state) {
  const std::vector<double> cdf = share_cdf();
  Rng rng(1);
  for (auto _ : state) {
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), rng.uniform());
    benchmark::DoNotOptimize(it);
  }
}
BENCHMARK(BM_ServiceDrawLowerBound);

void BM_Pow10Fast(benchmark::State& state) {
  double x = 0.73;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pow10_fast(x));
  }
}
BENCHMARK(BM_Pow10Fast);

void BM_Pow10Std(benchmark::State& state) {
  double x = 0.73;
  for (auto _ : state) {
    benchmark::DoNotOptimize(std::pow(10.0, x));
  }
}
BENCHMARK(BM_Pow10Std);

void BM_CircadianLut(benchmark::State& state) {
  std::size_t m = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circadian_activity_lut(m));
    m = (m + 1) % kMinutesPerDay;
  }
}
BENCHMARK(BM_CircadianLut);

void BM_CircadianDirect(benchmark::State& state) {
  std::size_t m = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circadian_activity(m));
    m = (m + 1) % kMinutesPerDay;
  }
}
BENCHMARK(BM_CircadianDirect);

}  // namespace

int main(int argc, char** argv) {
  const bool fast = mtd::bench::fast_mode();
  const std::uint64_t draw_iters = fast ? 200000 : 4000000;
  const std::uint64_t sweeps = fast ? 100 : 2000;
  const std::size_t event_count = fast ? 50000 : 500000;

  const std::vector<StreamEvent> events = serialization_events(event_count);

  JsonArray rows;
  for (JsonObject row :
       {bench_service_draw(draw_iters), bench_mixture_draw(draw_iters),
        bench_circadian(sweeps), bench_pow10(draw_iters),
        bench_uniform_block(draw_iters), bench_pow10_block(draw_iters),
        bench_alias_sample_block(draw_iters), bench_minute_fill(fast),
        bench_service_model_block(fast),
        bench_mixture_scan(2, draw_iters), bench_mixture_scan(4, draw_iters),
        bench_mixture_scan(8, draw_iters), bench_mixture_scan(16, draw_iters),
        bench_ndjson(events), bench_binary(events), bench_csv(events)}) {
    print_row(row);
    rows.emplace_back(std::move(row));
  }

  JsonObject report;
  report.emplace("bench", "hot_paths");
  report.emplace("fast", fast);
  report.emplace("rows", std::move(rows));
  mtd::write_file("BENCH_hotpaths.json", Json(std::move(report)).dump());
  std::cerr << "[bench] wrote BENCH_hotpaths.json\n";
  return mtd::bench::run_benchmarks(argc, argv);
}
