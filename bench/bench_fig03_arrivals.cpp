// Fig. 3: PDFs of the per-minute session arrival rate for BSs of different
// load deciles, with the fitted bi-modal model (Gaussian daytime peak +
// Pareto overnight off-peak).
#include "bench_common.hpp"

#include "common/time_utils.hpp"
#include "core/arrival_model.hpp"

namespace {

using namespace mtd;
using bench::bench_dataset;

void print_fig3() {
  const MeasurementDataset& ds = bench_dataset();
  const ArrivalModel model = ArrivalModel::fit(ds);

  print_banner(std::cout, "Figure 3 - session arrivals per minute by BS load decile");
  TextTable table({"decile", "day mean (emp)", "sigma/mu (emp)",
                   "fit: Gauss mu", "fit: Gauss sigma", "fit: Pareto scale",
                   "night mean (emp)", "day-fit EMD"});
  for (std::uint8_t d = 0; d < kNumDeciles; ++d) {
    const DecileArrivalStats& stats = ds.decile_arrivals(d);
    const ArrivalFitReport& fit = model.classes()[d];
    table.add_row({std::to_string(d),
                   TextTable::num(stats.day_stats.mean(), 2),
                   TextTable::num(fit.sigma_over_mu, 3),
                   TextTable::num(fit.model.peak_mu, 2),
                   TextTable::num(fit.model.peak_sigma, 3),
                   TextTable::num(fit.model.offpeak_scale, 3),
                   TextTable::num(stats.night_stats.mean(), 3),
                   TextTable::num(fit.day_emd, 3)});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape check: fitted Gaussian means span "
            << TextTable::num(model.classes().front().model.peak_mu, 2)
            << " -> "
            << TextTable::num(model.classes().back().model.peak_mu, 2)
            << " sessions/min across deciles (paper: 1.21 -> 71), "
            << "sigma/mu ~ 0.1 everywhere, Pareto shape fixed at "
            << ArrivalClassModel::kOffpeakShape << ".\n";

  // Bi-modality: pooled count PDF of one mid decile at a few abscissae.
  const DecileArrivalStats& mid = ds.decile_arrivals(6);
  BinnedPdf pooled = mid.count_pdf;
  pooled.normalize();
  std::cout << "\nPooled per-minute count PDF, decile 6, coarse-binned "
               "(bimodal: night mode near 0, day mode near the class "
               "mean, near-empty in between):\n";
  TextTable pdf({"sessions/min range", "probability mass"});
  const std::size_t block = pooled.size() / 16;
  for (std::size_t i = 0; i + block <= pooled.size(); i += block) {
    double mass = 0.0;
    for (std::size_t j = i; j < i + block; ++j) {
      mass += pooled[j] * pooled.axis().width();
    }
    pdf.add_row({TextTable::num(pooled.axis().edge(i), 1) + " - " +
                     TextTable::num(pooled.axis().edge(i + block), 1),
                 TextTable::sci(mass, 2)});
  }
  pdf.print(std::cout);
}

void bm_arrival_sampling(benchmark::State& state) {
  const ArrivalModel model = ArrivalModel::fit(bench_dataset());
  const ArrivalClassModel& cls = model.class_model(6);
  Rng rng(1);
  std::size_t minute = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cls.sample_minute(minute, rng));
    minute = (minute + 1) % kMinutesPerDay;
  }
}
BENCHMARK(bm_arrival_sampling);

void bm_arrival_model_fit(benchmark::State& state) {
  const MeasurementDataset& ds = bench_dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ArrivalModel::fit(ds));
  }
}
BENCHMARK(bm_arrival_model_fit);

}  // namespace

int main(int argc, char** argv) {
  print_fig3();
  return mtd::bench::run_benchmarks(argc, argv);
}
