// Table 2: capacity allocation for network slicing - percentage of time
// with no dropped traffic per strategy, at the paper's scenario scale
// (10 antennas, 28+ SPs, one week, 95% SLA over peak hours).
#include "bench_common.hpp"

#include "usecases/slicing.hpp"

namespace {

using namespace mtd;
using bench::bench_registry;

SlicingConfig paper_config() {
  SlicingConfig config;
  config.num_antennas = bench::fast_mode() ? 3 : 10;
  config.eval_days = bench::fast_mode() ? 2 : 7;
  config.calibration_days = bench::fast_mode() ? 2 : 5;
  config.seed = 61;
  return config;
}

void print_table2() {
  const SlicingResult result = run_slicing(bench_registry(), paper_config());

  print_banner(std::cout,
               "Table 2 - network slicing: time with no dropped traffic");
  TextTable table({"strategy", "mean satisfied", "std dev", "SLA met",
                   "total allocation"});
  for (const SliceStrategyResult& row : result.strategies) {
    table.add_row({row.name, TextTable::pct(row.mean_satisfied, 2),
                   TextTable::pct(row.stddev_satisfied, 2),
                   TextTable::pct(row.sla_met_fraction, 1),
                   TextTable::num(row.total_allocated_mbps, 0) + " Mbps"});
  }
  table.print(std::cout);

  std::cout << "\nPaper reference: model 95.15% +- 2.1, bm a 89.8% +- 4.3, "
               "bm b 87.25% +- 4.2.\nShape check: only the session-level "
               "model approaches the 95% target with low variability; the "
               "category benchmarks starve the heavy slices.\n";
}

void bm_slicing_quick(benchmark::State& state) {
  SlicingConfig config;
  config.num_antennas = 2;
  config.eval_days = 1;
  config.calibration_days = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_slicing(bench_registry(), config));
  }
}
BENCHMARK(bm_slicing_quick)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  return mtd::bench::run_benchmarks(argc, argv);
}
