// Fig. 12: normalized traffic demand and allocated capacity of the Facebook
// network slice at one BS over time - the model-driven allocation sits far
// below the bursty demand peaks yet satisfies the 95% SLA.
#include "bench_common.hpp"

#include "common/time_utils.hpp"
#include "usecases/slicing.hpp"

namespace {

using namespace mtd;
using bench::bench_registry;

void print_fig12() {
  SlicingConfig config;
  config.num_antennas = bench::fast_mode() ? 2 : 4;
  config.eval_days = bench::fast_mode() ? 2 : 7;
  config.calibration_days = 3;
  config.seed = 62;
  config.fig12_service = "Facebook";
  config.fig12_antenna = 2;  // the decile-6 antenna of the cycled population

  const SlicingResult result = run_slicing(bench_registry(), config);
  const double alloc = result.strategies[0].fig12_allocation_mbps;

  print_banner(std::cout,
               "Figure 12 - Facebook slice demand vs allocated capacity");
  std::cout << "Model allocation (95th pct): " << TextTable::num(alloc, 2)
            << " Mbps\n\nHourly demand profile (mean / max per hour, Mbps, "
               "'*' = hour contains minutes above the allocation):\n";

  TextTable table({"day", "hour", "mean demand", "max demand", "over?"});
  const auto& series = result.fig12_demand_mbps;
  for (std::size_t day = 0; day < config.eval_days; ++day) {
    for (std::size_t hour = 0; hour < 24; hour += 2) {
      double sum = 0.0, peak = 0.0;
      for (std::size_t m = 0; m < 60; ++m) {
        const double v = series[day * kMinutesPerDay + hour * 60 + m];
        sum += v;
        peak = std::max(peak, v);
      }
      if (day > 0 && day != config.eval_days - 1 && day % 3 != 0) continue;
      table.add_row({std::to_string(day), std::to_string(hour) + ":00",
                     TextTable::num(sum / 60.0, 2), TextTable::num(peak, 2),
                     peak > alloc ? "*" : ""});
    }
  }
  table.print(std::cout);

  double peak_demand = 0.0;
  std::size_t over = 0, peak_minutes = 0;
  for (std::size_t m = 0; m < series.size(); ++m) {
    peak_demand = std::max(peak_demand, series[m]);
    if (!is_peak_minute(m % kMinutesPerDay)) continue;
    ++peak_minutes;
    if (series[m] > alloc) ++over;
  }
  std::cout << "\nPeak demand over the week: "
            << TextTable::num(peak_demand, 2) << " Mbps vs allocation "
            << TextTable::num(alloc, 2)
            << " Mbps - the allocation is robust against outliers (Fig. 12) "
               "while violating the slice in only "
            << TextTable::pct(static_cast<double>(over) /
                                  static_cast<double>(peak_minutes),
                              2)
            << " of peak minutes.\n";
}

void bm_demand_generation(benchmark::State& state) {
  const ArrivalModel& arrivals = bench_registry().arrivals();
  const ArrivalClassModel& cls = arrivals.class_model(6);
  Rng rng(1);
  for (auto _ : state) {
    std::uint32_t total = 0;
    for (std::size_t m = 0; m < kMinutesPerDay; ++m) {
      total += cls.sample_minute(m, rng);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(bm_demand_generation)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig12();
  return mtd::bench::run_benchmarks(argc, argv);
}
