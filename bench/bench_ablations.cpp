// Ablations of the modeling design choices the paper fixes by hand:
//
//  A. Number of residual mixture components - Sec. 5.2 caps the model at 3
//     peaks after observing that further components carry weight < 1e-4.
//  B. Derivative threshold of the peak detector - footnote 3 claims the
//     algorithm is robust to this choice (1e-5 works for every service).
//  C. The sigma = mu/10 constraint of the arrival Gaussian - Sec. 5.1
//     fixes the ratio across all BS classes instead of fitting sigma.
#include "bench_common.hpp"

#include "core/arrival_model.hpp"
#include "core/volume_model.hpp"
#include "math/distributions.hpp"
#include "math/em_gmm.hpp"
#include "math/metrics.hpp"
#include "usecases/vran.hpp"

namespace {

using namespace mtd;
using bench::bench_dataset;

std::vector<std::size_t> fitted_services() {
  const MeasurementDataset& ds = bench_dataset();
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < ds.num_services(); ++s) {
    if (ds.slice(s, Slice::kTotal).sessions >= 5000) out.push_back(s);
  }
  return out;
}

double median_model_emd(const VolumeModelOptions& options) {
  const MeasurementDataset& ds = bench_dataset();
  std::vector<double> emds;
  for (std::size_t s : fitted_services()) {
    const BinnedPdf pdf = ds.slice(s, Slice::kTotal).normalized_pdf();
    const VolumeModel model = VolumeModel::fit(pdf, options);
    emds.push_back(model.emd_against(pdf));
  }
  return quantile(emds, 0.5);
}

void ablation_peak_count() {
  print_banner(std::cout,
               "Ablation A - residual components vs model fidelity");
  TextTable table({"max peaks", "median EMD", "EMD vs 3-peak baseline"});
  VolumeModelOptions options;
  options.max_peaks = 3;
  const double baseline = median_model_emd(options);
  for (std::size_t peaks : {1u, 2u, 3u, 5u, 8u}) {
    options.max_peaks = peaks;
    const double emd_value = median_model_emd(options);
    table.add_row({std::to_string(peaks), TextTable::sci(emd_value, 2),
                   TextTable::num(emd_value / baseline, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "Expected: fidelity saturates at <= 3 components (the paper's "
               "cap); extra peaks carry negligible weight.\n";
}

void ablation_derivative_threshold() {
  print_banner(std::cout,
               "Ablation B - derivative threshold of the peak detector");
  TextTable table({"threshold", "median EMD", "peaks (Netflix)"});
  const MeasurementDataset& ds = bench_dataset();
  const BinnedPdf netflix =
      ds.slice(service_index("Netflix"), Slice::kTotal).normalized_pdf();
  for (double threshold : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
    VolumeModelOptions options;
    options.derivative_threshold = threshold;
    const VolumeModel model = VolumeModel::fit(netflix, options);
    table.add_row({TextTable::sci(threshold, 0),
                   TextTable::sci(median_model_emd(options), 2),
                   std::to_string(model.peaks().size())});
  }
  table.print(std::cout);
  std::cout << "Expected: flat across orders of magnitude (footnote 3: the "
               "algorithm is robust to the threshold).\n";
}

void ablation_sigma_constraint() {
  print_banner(std::cout,
               "Ablation C - fixed sigma = mu/10 vs empirically fitted sigma");
  const MeasurementDataset& ds = bench_dataset();
  TextTable table({"decile", "EMD (sigma = mu/10)", "EMD (empirical sigma)"});
  for (std::uint8_t d = 0; d < kNumDeciles; ++d) {
    const DecileArrivalStats& stats = ds.decile_arrivals(d);
    BinnedPdf empirical = stats.day_pdf;
    empirical.normalize();
    const double mu = stats.day_stats.mean();

    const auto emd_for = [&](double sigma) {
      BinnedPdf fitted(empirical.axis());
      const Gaussian gauss(mu, std::max(sigma, 1e-3));
      for (std::size_t i = 0; i < fitted.size(); ++i) {
        fitted[i] = gauss.pdf(fitted.axis().center(i));
      }
      fitted.normalize();
      return emd(empirical, fitted);
    };
    table.add_row({std::to_string(d), TextTable::num(emd_for(mu / 10.0), 3),
                   TextTable::num(emd_for(stats.day_stats.stddev()), 3)});
  }
  table.print(std::cout);
  std::cout << "Expected: the constrained fit loses little accuracy - the "
               "empirical sigma/mu ratio hovers around 0.1 in every class "
               "(Sec. 5.1), so fixing it removes a parameter for free.\n";
}

void ablation_packing_policy() {
  print_banner(std::cout,
               "Ablation D - vRAN consolidation policy vs energy");
  VranConfig config;
  config.num_edge_sites = bench::fast_mode() ? 4 : 8;
  config.rus_per_site = bench::fast_mode() ? 4 : 8;
  config.num_days = 1;
  config.ru_decile = 6;
  TextTable table({"policy", "mean power (ground truth)",
                   "vs first-fit decreasing"});
  double baseline = 0.0;
  for (PackingPolicy policy :
       {PackingPolicy::kFirstFitDecreasing, PackingPolicy::kBestFitDecreasing,
        PackingPolicy::kWorstFitDecreasing,
        PackingPolicy::kNoConsolidation}) {
    config.packing = policy;
    const VranResult result = run_vran(bench::bench_registry(), config);
    const double power = result.strategies.front().mean_power_w;
    if (policy == PackingPolicy::kFirstFitDecreasing) baseline = power;
    table.add_row({to_string(policy),
                   TextTable::num(power / 1000.0, 2) + " kW",
                   TextTable::num(power / baseline, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "Reading: consolidation is what saves energy (the paper's "
               "premise); without it every RU pins an idle-powered PS, and "
               "the choice among decreasing-fit heuristics is secondary.\n";
}

void ablation_em_gmm() {
  // Sec. 5.2's closing remark: traditional mixture models can also fit
  // F_s(x); the residual-peak algorithm trades a little automatic
  // flexibility for compactness and explainable components.
  print_banner(std::cout,
               "Ablation E - residual-peak decomposition vs EM-fitted GMM");
  const MeasurementDataset& ds = bench_dataset();
  TextTable table({"service", "EMD (paper algo)", "EMD (EM-GMM, K=4)",
                   "components (paper)", "semantic"});
  for (const char* name : {"Netflix", "Twitch", "Facebook", "Deezer"}) {
    const BinnedPdf pdf =
        ds.slice(service_index(name), Slice::kTotal).normalized_pdf();
    const VolumeModel paper_model = VolumeModel::fit(pdf);
    EmGmmOptions options;
    options.components = 4;
    const EmGmmResult gmm = fit_em_gmm(pdf, options);
    BinnedPdf gmm_pdf(pdf.axis());
    for (std::size_t i = 0; i < gmm_pdf.size(); ++i) {
      gmm_pdf[i] = gmm.pdf(pdf.axis().center(i));
    }
    gmm_pdf.normalize();
    table.add_row({name, TextTable::sci(paper_model.emd_against(pdf), 2),
                   TextTable::sci(emd(pdf, gmm_pdf), 2),
                   std::to_string(1 + paper_model.peaks().size()),
                   "main trend + named peaks"});
  }
  table.print(std::cout);
  std::cout << "Reading: the free-form EM baseline fits tighter, as "
               "expected; the paper's decomposition stays an order of "
               "magnitude below inter-service distances (~1.5e-01) while "
               "keeping interpretable (main / transient / knee) components "
               "- the trade-off Sec. 5.2 argues for.\n";
}

void bm_fit_with_peak_budget(benchmark::State& state) {
  const MeasurementDataset& ds = bench_dataset();
  const BinnedPdf pdf =
      ds.slice(service_index("Netflix"), Slice::kTotal).normalized_pdf();
  VolumeModelOptions options;
  options.max_peaks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(VolumeModel::fit(pdf, options));
  }
}
BENCHMARK(bm_fit_with_peak_budget)->Arg(1)->Arg(3)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  ablation_peak_count();
  ablation_derivative_threshold();
  ablation_sigma_constraint();
  ablation_packing_policy();
  ablation_em_gmm();
  return mtd::bench::run_benchmarks(argc, argv);
}
