// Fig. 11: fitted models F~_s(x) and v~_s(d) against the measurement data
// for a choice of eight services, plus the model-quality summary of
// Sec. 5.4 (EMD of the volume models, R^2 of the duration models).
#include "bench_common.hpp"

#include <array>
#include <cmath>

#include "analysis/invariance.hpp"

namespace {

using namespace mtd;
using bench::bench_dataset;
using bench::bench_registry;

constexpr std::array<const char*, 8> kServices{
    "Twitch",  "Twitter",  "Google Maps", "Amazon",
    "FB Live", "Facebook", "SnapChat",    "Google Meet"};

void print_fig11() {
  const MeasurementDataset& ds = bench_dataset();
  const ModelRegistry& registry = bench_registry();

  print_banner(std::cout, "Figure 11 - fitted models vs measurements");
  TextTable table({"service", "model EMD", "main mu", "main sigma", "#peaks",
                   "beta", "duration R^2"});
  for (const char* name : kServices) {
    const ServiceModel& model = registry.by_name(name);
    const BinnedPdf empirical =
        ds.slice(service_index(name), Slice::kTotal).normalized_pdf();
    table.add_row({name,
                   TextTable::sci(model.volume().emd_against(empirical), 2),
                   TextTable::num(model.volume().main().mu(), 2),
                   TextTable::num(model.volume().main().sigma(), 2),
                   std::to_string(model.volume().peaks().size()),
                   TextTable::num(model.duration().beta(), 2),
                   TextTable::num(model.duration().r_squared(), 2)});
  }
  table.print(std::cout);

  // The paper's quality criterion: model EMD an order of magnitude below
  // the inter-service EMDs of Fig. 8a.
  const InvarianceReport invariance = analyze_invariance(ds);
  const double inter = invariance.pdf_distances[0].median();
  std::vector<double> emds;
  for (const ServiceModel& model : registry.services()) {
    const BinnedPdf empirical =
        ds.slice(service_index(model.name()), Slice::kTotal).normalized_pdf();
    emds.push_back(model.volume().emd_against(empirical));
  }
  std::cout << "\nAll " << emds.size() << " fitted services: median model "
            << "EMD = " << TextTable::sci(quantile(emds, 0.5), 2)
            << ", worst = " << TextTable::sci(quantile(emds, 1.0), 2)
            << "; inter-service EMD median = " << TextTable::sci(inter, 2)
            << " (paper: model EMD one order of magnitude below).\n";

  // One detailed curve like the paper's subplots.
  const ServiceModel& model = registry.by_name("Twitch");
  const BinnedPdf empirical =
      ds.slice(service_index("Twitch"), Slice::kTotal).normalized_pdf();
  const BinnedPdf fitted = model.volume().discretize(empirical.axis());
  std::cout << "\nTwitch F~ vs measurement:\n";
  TextTable curve({"volume (MB)", "measured", "model"});
  for (std::size_t i = 0; i < empirical.size(); i += 10) {
    if (empirical[i] < 1e-4 && fitted[i] < 1e-4) continue;
    const double mb = std::pow(10.0, empirical.axis().center(i));
    curve.add_row({TextTable::num(mb, mb < 1 ? 3 : 1),
                   TextTable::num(empirical[i], 4),
                   TextTable::num(fitted[i], 4)});
  }
  curve.print(std::cout);
}

void bm_fit_all_services(benchmark::State& state) {
  const MeasurementDataset& ds = bench_dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ModelRegistry::fit(ds));
  }
}
BENCHMARK(bm_fit_all_services)->Unit(benchmark::kMillisecond);

void bm_model_sampling(benchmark::State& state) {
  const ServiceModel& model = bench_registry().by_name("Facebook");
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.sample(rng));
  }
}
BENCHMARK(bm_model_sampling);

}  // namespace

int main(int argc, char** argv) {
  print_fig11();
  return mtd::bench::run_benchmarks(argc, argv);
}
