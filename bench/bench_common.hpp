// Shared scaffolding for the per-figure benchmark binaries.
//
// Every binary regenerates one table or figure of the paper from the
// synthetic measurement substrate, prints the rows/series the paper reports
// (shape comparison, not absolute numbers), and then runs google-benchmark
// timings of the kernels involved.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "core/service_model.hpp"
#include "dataset/measurement.hpp"
#include "io/table.hpp"

namespace mtd::bench {

/// True when MTD_BENCH_FAST is set: shrink scenario sizes for smoke runs.
inline bool fast_mode() {
  static const bool fast = std::getenv("MTD_BENCH_FAST") != nullptr;
  return fast;
}

/// The bench-scale synthetic network: 100 BSs across all deciles, regions,
/// cities and RATs (configurable down for smoke runs).
inline const Network& bench_network() {
  static const Network network = [] {
    NetworkConfig config;
    config.num_bs = fast_mode() ? 20 : 100;
    Rng rng(2023);
    return Network::build(config, rng);
  }();
  return network;
}

/// The bench-scale measurement dataset: 10 simulated days (the paper uses
/// 45; 10 keeps every figure stable at a fraction of the runtime).
inline const MeasurementDataset& bench_dataset() {
  static const MeasurementDataset dataset = [] {
    TraceConfig trace;
    trace.num_days = fast_mode() ? 2 : 10;
    trace.seed = 20231024;
    std::cerr << "[bench] generating synthetic trace ("
              << bench_network().size() << " BSs, " << trace.num_days
              << " days)...\n";
    MeasurementDataset ds = collect_dataset(bench_network(), trace);
    std::cerr << "[bench] " << ds.total_sessions() << " sessions, "
              << ds.total_volume_mb() / 1e6 << " TB\n";
    return ds;
  }();
  return dataset;
}

/// Models fitted on the bench dataset.
inline const ModelRegistry& bench_registry() {
  static const ModelRegistry registry = ModelRegistry::fit(bench_dataset());
  return registry;
}

/// Runs the registered google-benchmark timings (call at the end of main).
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace mtd::bench
