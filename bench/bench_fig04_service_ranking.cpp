// Fig. 4: services ranked by the fraction of sessions they generate, their
// normalized total traffic, and the negative-exponential rank law.
#include "bench_common.hpp"

#include "analysis/ranking.hpp"

namespace {

using namespace mtd;
using bench::bench_dataset;

void print_fig4() {
  const ServiceRanking ranking = rank_services(bench_dataset());

  print_banner(std::cout, "Figure 4 - service ranking by session share");
  TextTable table({"rank", "service", "session share", "traffic share",
                   "exp-law prediction"});
  for (const RankedService& entry : ranking.services) {
    table.add_row({std::to_string(entry.rank), entry.name,
                   TextTable::pct(entry.session_share, 2),
                   TextTable::pct(entry.traffic_share, 2),
                   TextTable::pct(ranking.rank_law(
                                      static_cast<double>(entry.rank)),
                                  2)});
  }
  table.print(std::cout);

  std::cout << "\nExponential rank law: share(rank) = "
            << TextTable::num(ranking.rank_law.a, 4) << " * exp("
            << TextTable::num(ranking.rank_law.b, 4) << " * rank),  "
            << "log-space R^2 = "
            << TextTable::num(ranking.rank_law.r_squared_log, 3)
            << " (paper: 0.97)\n";
  std::cout << "Top-20 services cover "
            << TextTable::pct(ranking.top_k_share(20), 1)
            << " of all sessions (paper: > 78%).\n";
  std::cout << "Traffic dots scatter: compare Netflix (high traffic, low "
               "rank) against its session-share neighbours above.\n";
}

void bm_rank_services(benchmark::State& state) {
  const MeasurementDataset& ds = bench_dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rank_services(ds));
  }
}
BENCHMARK(bm_rank_services);

}  // namespace

int main(int argc, char** argv) {
  print_fig4();
  return mtd::bench::run_benchmarks(argc, argv);
}
