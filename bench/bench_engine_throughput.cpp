// Streaming-engine throughput: sessions/s by worker count and batch size.
//
// Streams the bench network through StreamEngine in max-throughput mode at
// 1, 2, 4 and 8 workers into a minimal counting sink, and prints one JSON
// line per worker count (schema: bench, workers, sessions, wall_s,
// sessions_per_s, mbytes_per_s, dropped, stall_s) so CI can track the
// scaling curve. Under the blocking backpressure policy the drop counters
// must be zero and every worker count must deliver the identical session
// count — both are asserted here. Speedup over one worker is reported
// relative to the measured single-worker rate; on a single-core host the
// curve is flat (the engine cannot conjure parallelism the hardware does
// not have), which the "hw_threads" field makes explicit.
//
// A second sweep varies EngineConfig::batch_size (1/16/64/256) at a fixed
// worker count to measure the cost of per-event ring traffic vs batched
// transfers, and a third compares the scalar and SoA batch generator
// kernels end to end (kernel_sweep below; ratcheted by check_bench.sh).
// All sweeps are written to BENCH_engine.json (machine-readable; schemas
// documented per sweep) for CI trend tracking.
//
// google-benchmark timings of the SPSC ring primitive follow the JSON
// lines.
#include <cstdlib>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "common/fault.hpp"
#include "engine/spsc_ring.hpp"
#include "io/json.hpp"

namespace {

using namespace mtd;

/// Counts deliveries; deliberately near-zero per-event work so the bench
/// measures engine overhead, not sink cost.
struct CountingSink final : TraceSink {
  std::uint64_t minutes = 0;
  std::uint64_t sessions = 0;
  double volume_mb = 0.0;

  void on_minute(const BaseStation&, std::size_t, std::size_t,
                 std::uint32_t) override {
    ++minutes;
  }
  void on_session(const Session& session) override {
    ++sessions;
    volume_mb += session.volume_mb;
  }
};

JsonArray throughput_sweep();
JsonArray batch_sweep();
JsonArray kernel_sweep();

JsonArray throughput_sweep() {
  JsonArray rows;
  TraceConfig trace;
  trace.num_days = mtd::bench::fast_mode() ? 1 : 3;
  trace.seed = 20231024;
  const Network& network = mtd::bench::bench_network();

  std::uint64_t reference_sessions = 0;
  double reference_rate = 0.0;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    EngineConfig config;
    config.num_workers = workers;
    config.queue_capacity = 16384;
    config.backpressure = BackpressurePolicy::kBlock;

    StreamEngine engine(network, trace, config);
    CountingSink sink;
    const EngineResult result = engine.run(sink);
    const TelemetrySnapshot& t = result.telemetry;

    if (workers == 1) {
      reference_sessions = sink.sessions;
      reference_rate = t.sessions_per_second;
    } else if (sink.sessions != reference_sessions) {
      std::cerr << "FATAL: session count diverged at " << workers
                << " workers\n";
      std::exit(1);
    }
    if (t.dropped_sessions + t.dropped_minutes != 0) {
      std::cerr << "FATAL: blocking backpressure dropped events\n";
      std::exit(1);
    }

    JsonObject row;
    row.emplace("bench", "engine_throughput");
    row.emplace("workers", workers);
    row.emplace("hw_threads",
                static_cast<double>(std::thread::hardware_concurrency()));
    row.emplace("sessions", static_cast<double>(sink.sessions));
    row.emplace("wall_s", t.wall_seconds);
    row.emplace("sessions_per_s", t.sessions_per_second);
    row.emplace("mbytes_per_s", t.mbytes_per_second);
    row.emplace("dropped",
                static_cast<double>(t.dropped_sessions + t.dropped_minutes));
    row.emplace("stall_s", t.producer_stall_seconds);
    row.emplace("speedup_vs_1", reference_rate > 0.0
                                    ? t.sessions_per_second / reference_rate
                                    : 1.0);
    Json json(std::move(row));
    std::cout << json.dump() << "\n";
    rows.push_back(std::move(json));
  }
  return rows;
}

/// Batch-size sweep at a fixed worker count: how much does amortizing ring
/// traffic over EventBatch transfers buy? Row schema: bench, batch_size,
/// workers, sessions, events, wall_s, sessions_per_s, events_per_s,
/// speedup_vs_batch1. batch_size=1 degenerates to one ring item per event
/// (the pre-batching data plane); the identical session count across batch
/// sizes is asserted.
JsonArray batch_sweep() {
  JsonArray rows;
  TraceConfig trace;
  trace.num_days = mtd::bench::fast_mode() ? 1 : 3;
  trace.seed = 20231024;
  const Network& network = mtd::bench::bench_network();

  std::uint64_t reference_sessions = 0;
  double reference_rate = 0.0;
  for (std::size_t batch : {1u, 16u, 64u, 256u}) {
    EngineConfig config;
    config.num_workers = 2;
    config.queue_capacity = 16384;
    config.batch_size = batch;
    config.backpressure = BackpressurePolicy::kBlock;

    StreamEngine engine(network, trace, config);
    CountingSink sink;
    const EngineResult result = engine.run(sink);
    const TelemetrySnapshot& t = result.telemetry;

    if (batch == 1) {
      reference_sessions = sink.sessions;
      reference_rate = t.sessions_per_second;
    } else if (sink.sessions != reference_sessions) {
      std::cerr << "FATAL: session count diverged at batch_size " << batch
                << "\n";
      std::exit(1);
    }

    std::uint64_t events = 0;
    for (const auto& kind : t.kinds) events += kind.consumed;

    JsonObject row;
    row.emplace("bench", "engine_batch");
    row.emplace("batch_size", static_cast<double>(batch));
    row.emplace("workers", static_cast<double>(config.num_workers));
    row.emplace("sessions", static_cast<double>(sink.sessions));
    row.emplace("events", static_cast<double>(events));
    row.emplace("wall_s", t.wall_seconds);
    row.emplace("sessions_per_s", t.sessions_per_second);
    row.emplace("events_per_s", t.events_per_second);
    row.emplace("speedup_vs_batch1",
                reference_rate > 0.0 ? t.sessions_per_second / reference_rate
                                     : 1.0);
    Json json(std::move(row));
    std::cout << json.dump() << "\n";
    rows.push_back(std::move(json));
  }
  return rows;
}

/// Generator-kernel sweep: the scalar reference path vs the SoA batch
/// kernels (DESIGN.md sec. 16) end to end through the engine, each at the
/// worker counts that matter on this host. Row schema: bench, kernel,
/// workers, sessions, wall_s, sessions_per_s, mbytes_per_s, dropped,
/// speedup_vs_scalar (per worker count, batch rate / scalar rate). The two
/// kernels draw different streams, so session counts differ slightly
/// between them — but within a kernel they must be worker-count invariant,
/// which is asserted. scripts/check_bench.sh ratchets the batch
/// sessions_per_s of this section against the committed baseline.
JsonArray kernel_sweep() {
  JsonArray rows;
  TraceConfig trace;
  trace.num_days = mtd::bench::fast_mode() ? 1 : 3;
  trace.seed = 20231024;
  const Network& network = mtd::bench::bench_network();

  std::uint64_t reference[2] = {0, 0};  // per-kernel 1-worker session count
  for (std::size_t workers : {1u, 2u}) {
    double scalar_rate = 0.0;
    for (const GeneratorKernel kernel :
         {GeneratorKernel::kScalar, GeneratorKernel::kBatch}) {
      EngineConfig config;
      config.num_workers = workers;
      config.queue_capacity = 16384;
      config.backpressure = BackpressurePolicy::kBlock;
      config.kernel = kernel;

      StreamEngine engine(network, trace, config);
      CountingSink sink;
      const EngineResult result = engine.run(sink);
      const TelemetrySnapshot& t = result.telemetry;

      // Worker-count invariance within a kernel: remember the 1-worker
      // count on the first pass, compare on later ones.
      const std::size_t k = static_cast<std::size_t>(kernel);
      if (workers == 1) {
        reference[k] = sink.sessions;
      } else if (sink.sessions != reference[k]) {
        std::cerr << "FATAL: " << to_string(kernel)
                  << " session count diverged at " << workers << " workers\n";
        std::exit(1);
      }
      if (t.dropped_sessions + t.dropped_minutes != 0) {
        std::cerr << "FATAL: blocking backpressure dropped events\n";
        std::exit(1);
      }

      if (kernel == GeneratorKernel::kScalar) {
        scalar_rate = t.sessions_per_second;
      }

      JsonObject row;
      row.emplace("bench", "engine_kernel");
      row.emplace("kernel", std::string(to_string(kernel)));
      row.emplace("workers", static_cast<double>(workers));
      row.emplace("sessions", static_cast<double>(sink.sessions));
      row.emplace("wall_s", t.wall_seconds);
      row.emplace("sessions_per_s", t.sessions_per_second);
      row.emplace("mbytes_per_s", t.mbytes_per_second);
      row.emplace("dropped",
                  static_cast<double>(t.dropped_sessions + t.dropped_minutes));
      row.emplace("speedup_vs_scalar",
                  scalar_rate > 0.0 ? t.sessions_per_second / scalar_rate
                                    : 1.0);
      Json json(std::move(row));
      std::cout << json.dump() << "\n";
      rows.push_back(std::move(json));
    }
  }
  return rows;
}

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<std::uint64_t> ring(1024);
  std::uint64_t i = 0;
  std::uint64_t out = 0;
  for (auto _ : state) {
    // Single-threaded steady state: each iteration moves one value through.
    benchmark::DoNotOptimize(ring.try_push(std::move(i)));
    benchmark::DoNotOptimize(ring.try_pop(out));
    ++i;
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_EngineMaxThroughput(benchmark::State& state) {
  TraceConfig trace;
  trace.num_days = 1;
  trace.seed = 7;
  EngineConfig config;
  config.num_workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    StreamEngine engine(mtd::bench::bench_network(), trace, config);
    CountingSink sink;
    const EngineResult result = engine.run(sink);
    state.counters["sessions_per_s"] = result.telemetry.sessions_per_second;
  }
}
BENCHMARK(BM_EngineMaxThroughput)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

// Cost of the fault-tolerance layer on the hot path: the fault-injection
// hooks compiled into workers, consumer, and sink adapters are a null-check
// when no injector is armed (arg 0); with an injector present but every
// point disarmed (arg 1) each hook adds a mutex-guarded map lookup. The
// delta between the two rows is the price of leaving injection compiled in.
void BM_EngineFaultHookOverhead(benchmark::State& state) {
  TraceConfig trace;
  trace.num_days = 1;
  trace.seed = 7;
  FaultInjector idle_injector;
  EngineConfig config;
  config.num_workers = 2;
  config.sink_error_policy = SinkErrorPolicy::kDegrade;
  if (state.range(0) == 1) config.fault = &idle_injector;
  for (auto _ : state) {
    StreamEngine engine(mtd::bench::bench_network(), trace, config);
    CountingSink sink;
    const EngineResult result = engine.run(sink);
    state.counters["sessions_per_s"] = result.telemetry.sessions_per_second;
  }
}
BENCHMARK(BM_EngineFaultHookOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  mtd::JsonObject report;
  report.emplace("bench", "engine_throughput");
  report.emplace(
      "hw_threads",
      static_cast<double>(std::thread::hardware_concurrency()));
  report.emplace("worker_sweep", mtd::Json(throughput_sweep()));
  report.emplace("batch_sweep", mtd::Json(batch_sweep()));
  report.emplace("kernel_sweep", mtd::Json(kernel_sweep()));
  mtd::write_file("BENCH_engine.json", mtd::Json(std::move(report)).dump());
  std::cerr << "[bench] wrote BENCH_engine.json\n";
  return mtd::bench::run_benchmarks(argc, argv);
}
