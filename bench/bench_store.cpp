// Trace-store benchmarks: ingest rate, query latency, and index pruning.
//
// One engine run is streamed into a fresh on-disk store (one committed
// B-tree segment per simulated day), then a reader is measured over it:
//
//   ingest        events/s through TraceStoreWriter commits
//   point_lookup  get() latency and pages touched per lookup
//   scan          single-BS day-range scan: pages read and leaves pruned
//                 by fences and bloom filters
//   replay        full-store key-order replay into a counting sink
//   compaction    a 45-segment synthetic store (one segment per simulated
//                 day, 5 in fast mode) merged into one: wall time plus
//                 index pages and single-BS scan pages before vs after
//
// The pruning claim of the index is asserted, not just reported: the
// single-BS scan must read strictly fewer pages than the full replay, and
// the replayed event count must equal the ingested one. Likewise the
// compaction claim: merging per-day segments must shrink the index
// (fence + bloom) page count and must not make the pruned scan read more
// pages. The report goes to BENCH_store.json (schema: {bench: "store",
// fast, ingest: {...}, point_lookup: {...}, scan: {...}, replay: {...},
// compaction: {...}}) for CI trend tracking.
// MTD_BENCH_FAST shrinks the scenario for smoke runs. google-benchmark
// timings of the point-lookup and bloom kernels follow.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "engine/store_runner.hpp"
#include "io/json.hpp"
#include "store/bloom.hpp"
#include "store/trace_store.hpp"

namespace {

using namespace mtd;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct CountingSink final : EventSink {
  std::uint64_t events = 0;
  void on_event(const StreamEvent&) override { ++events; }
};

const char* store_path() { return "/tmp/mtd_bench_trace.store"; }

std::size_t bench_days() { return mtd::bench::fast_mode() ? 1 : 3; }

TraceConfig bench_trace() {
  TraceConfig trace;
  trace.num_days = bench_days();
  trace.seed = 20231024;
  trace.rate_scale = mtd::bench::fast_mode() ? 0.05 : 0.2;
  return trace;
}

JsonObject run_ingest() {
  const Network& network = mtd::bench::bench_network();
  const TraceConfig trace = bench_trace();
  const auto t0 = Clock::now();
  store::TraceStoreWriter writer = store::TraceStoreWriter::create(
      store_path(), store::StoreOptions{});
  StreamEngine engine(network, trace);
  const EngineResult result = run_engine_into_store(engine, writer);
  writer.close();
  const double wall_s = seconds_since(t0);
  (void)result;

  const store::StoreManifest& manifest = writer.manifest();
  JsonObject row;
  row.emplace("events", static_cast<double>(manifest.events));
  row.emplace("segments", manifest.segments.size());
  row.emplace("pages", static_cast<double>(manifest.committed_pages));
  row.emplace("bytes", static_cast<double>(manifest.committed_bytes()));
  row.emplace("wall_s", wall_s);
  row.emplace("events_per_s",
              wall_s > 0.0 ? static_cast<double>(manifest.events) / wall_s
                           : 0.0);
  return row;
}

JsonObject run_point_lookups(store::TraceStore& reader,
                             const std::vector<EventKey>& probes) {
  reader.reset_telemetry();
  const auto t0 = Clock::now();
  std::uint64_t found = 0;
  for (const EventKey& key : probes) {
    if (reader.get(key).has_value()) ++found;
  }
  const double wall_s = seconds_since(t0);
  if (found != probes.size()) {
    std::cerr << "FATAL: only " << found << " of " << probes.size()
              << " ingested keys were found again\n";
    std::exit(1);
  }
  const store::StoreReadTelemetry& t = reader.telemetry();
  JsonObject row;
  row.emplace("lookups", probes.size());
  row.emplace("wall_s", wall_s);
  row.emplace("lookups_per_s",
              wall_s > 0.0 ? static_cast<double>(probes.size()) / wall_s
                           : 0.0);
  row.emplace("pages_read", static_cast<double>(t.pages_read));
  row.emplace("pages_per_lookup",
              static_cast<double>(t.pages_read) /
                  static_cast<double>(probes.size()));
  row.emplace("leaves_skipped_bloom",
              static_cast<double>(t.leaves_skipped_bloom));
  return row;
}

JsonObject run_scan(store::TraceStore& reader, std::uint32_t bs,
                    std::uint64_t* pages_read_out) {
  reader.reset_telemetry();
  const auto t0 = Clock::now();
  std::uint64_t events = 0;
  const std::uint64_t delivered =
      reader.scan(bs, 0, static_cast<std::uint16_t>(bench_days() - 1),
                  [&events](const StreamEvent&) { ++events; });
  const double wall_s = seconds_since(t0);
  const store::StoreReadTelemetry& t = reader.telemetry();
  *pages_read_out = t.pages_read;
  JsonObject row;
  row.emplace("bs", static_cast<double>(bs));
  row.emplace("events", static_cast<double>(delivered));
  row.emplace("wall_s", wall_s);
  row.emplace("pages_read", static_cast<double>(t.pages_read));
  row.emplace("leaves_skipped_fence",
              static_cast<double>(t.leaves_skipped_fence));
  row.emplace("leaves_skipped_bloom",
              static_cast<double>(t.leaves_skipped_bloom));
  return row;
}

JsonObject run_replay(store::TraceStore& reader, std::uint64_t ingested,
                      std::uint64_t* pages_read_out) {
  reader.reset_telemetry();
  CountingSink sink;
  const auto t0 = Clock::now();
  const std::uint64_t replayed = reader.replay(sink);
  const double wall_s = seconds_since(t0);
  if (replayed != ingested || sink.events != ingested) {
    std::cerr << "FATAL: replay returned " << replayed << " events, ingest "
              << "committed " << ingested << "\n";
    std::exit(1);
  }
  const store::StoreReadTelemetry& t = reader.telemetry();
  *pages_read_out = t.pages_read;
  JsonObject row;
  row.emplace("events", static_cast<double>(replayed));
  row.emplace("wall_s", wall_s);
  row.emplace("events_per_s",
              wall_s > 0.0 ? static_cast<double>(replayed) / wall_s : 0.0);
  row.emplace("pages_read", static_cast<double>(t.pages_read));
  return row;
}

// --- Compaction: per-day segments vs one merged segment -------------------
//
// The engine-backed store above has few segments; the per-segment index
// overhead compaction exists to reclaim only shows at the paper's horizon.
// So this section builds its own synthetic store with one committed
// segment per simulated day (45 days, matching the measurement campaign;
// 5 in fast mode) and measures the merge directly.

std::size_t compact_days() { return mtd::bench::fast_mode() ? 5 : 45; }

const char* compact_store_path() { return "/tmp/mtd_bench_compact.store"; }

std::uint64_t index_pages(const store::StoreManifest& manifest) {
  std::uint64_t pages = 0;
  for (const store::SegmentInfo& seg : manifest.segments) {
    pages += seg.num_pages - seg.num_leaves;  // fence + bloom pages
  }
  return pages;
}

std::uint64_t timed_bs_scan(store::TraceStore& reader, std::uint32_t bs,
                            std::uint16_t day_hi, double* wall_s_out) {
  reader.reset_telemetry();
  const auto t0 = Clock::now();
  std::uint64_t events = 0;
  (void)reader.scan(bs, 0, day_hi, [&events](const StreamEvent&) {
    ++events;
  });
  *wall_s_out = seconds_since(t0);
  return reader.telemetry().pages_read;
}

JsonObject run_compaction() {
  const std::uint16_t days = static_cast<std::uint16_t>(compact_days());
  constexpr std::uint32_t kNumBs = 32;
  constexpr std::uint16_t kMinutes = 16;
  {
    store::TraceStoreWriter writer =
        store::TraceStoreWriter::create(compact_store_path());
    for (std::uint16_t day = 0; day < days; ++day) {
      for (std::uint16_t minute = 0; minute < kMinutes; ++minute) {
        for (std::uint32_t bs = 0; bs < kNumBs; ++bs) {
          StreamEvent event;
          event.key = EventKey{bs, day, minute, 0};
          event.payload = MinuteEvent{bs + minute};
          writer.on_event(event);
        }
      }
      writer.commit();  // one segment per day, like the store runner
    }
    writer.close();
  }

  std::uint64_t index_before = 0;
  std::uint64_t scan_pages_before = 0;
  std::uint64_t segments_before = 0;
  double scan_wall_before = 0.0;
  {
    store::TraceStore reader(compact_store_path());
    segments_before = reader.manifest().segments.size();
    index_before = index_pages(reader.manifest());
    scan_pages_before = timed_bs_scan(
        reader, 7, static_cast<std::uint16_t>(days - 1), &scan_wall_before);
  }

  const auto t0 = Clock::now();
  store::CompactionReport merged;
  {
    store::TraceStoreWriter writer =
        store::TraceStoreWriter::append(compact_store_path());
    merged = writer.compact();
    writer.close();
  }
  const double compact_wall_s = seconds_since(t0);

  store::TraceStore reader(compact_store_path());
  const std::uint64_t index_after = index_pages(reader.manifest());
  double scan_wall_after = 0.0;
  const std::uint64_t scan_pages_after = timed_bs_scan(
      reader, 7, static_cast<std::uint16_t>(days - 1), &scan_wall_after);

  // The point of compaction is reclaiming per-segment index overhead: N
  // roots, N fence chains and N bloom filters collapse into one of each.
  if (index_after >= index_before) {
    std::cerr << "FATAL: compaction left " << index_after
              << " index pages, had " << index_before
              << " — merged index is not smaller\n";
    std::exit(1);
  }
  if (scan_pages_after > scan_pages_before) {
    std::cerr << "FATAL: single-BS scan reads " << scan_pages_after
              << " pages after compaction, " << scan_pages_before
              << " before — the merged fences prune worse\n";
    std::exit(1);
  }

  JsonObject row;
  row.emplace("days", static_cast<double>(days));
  row.emplace("events", static_cast<double>(merged.events));
  row.emplace("segments_before", static_cast<double>(segments_before));
  row.emplace("segments_after",
              static_cast<double>(reader.manifest().segments.size()));
  row.emplace("wall_s", compact_wall_s);
  row.emplace("pages_written", static_cast<double>(merged.pages_written));
  row.emplace("pages_retired", static_cast<double>(merged.pages_retired));
  row.emplace("index_pages_before", static_cast<double>(index_before));
  row.emplace("index_pages_after", static_cast<double>(index_after));
  row.emplace("scan_pages_before", static_cast<double>(scan_pages_before));
  row.emplace("scan_pages_after", static_cast<double>(scan_pages_after));
  row.emplace("scan_wall_s_before", scan_wall_before);
  row.emplace("scan_wall_s_after", scan_wall_after);
  return row;
}

void BM_StorePointLookup(benchmark::State& state) {
  store::TraceStore reader(store_path());
  const store::SegmentInfo& seg = reader.manifest().segments.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reader.get(seg.min_key));
  }
}
BENCHMARK(BM_StorePointLookup)->Unit(benchmark::kMicrosecond);

void BM_BloomProbe(benchmark::State& state) {
  store::BsBloom bloom(128, store::bloom_hashes_for(10.0));
  for (std::uint32_t bs = 0; bs < 64; ++bs) bloom.add(bs * 3);
  std::uint32_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bloom.maybe_contains(probe));
    ++probe;
  }
}
BENCHMARK(BM_BloomProbe);

}  // namespace

int main(int argc, char** argv) {
  JsonObject report;
  report.emplace("bench", "store");
  report.emplace("fast", mtd::bench::fast_mode());

  JsonObject ingest = run_ingest();
  const auto ingested =
      static_cast<std::uint64_t>(ingest.at("events").as_number());
  std::cout << Json(JsonObject(ingest)).dump() << "\n";

  store::TraceStore reader(store_path());
  const store::StoreVerifyReport verified = reader.verify();
  if (verified.events != ingested) {
    std::cerr << "FATAL: verify counted " << verified.events
              << " events, ingest committed " << ingested << "\n";
    return 1;
  }

  // Probe keys: each segment's fence keys are guaranteed present.
  std::vector<EventKey> probes;
  for (const store::SegmentInfo& seg : reader.manifest().segments) {
    probes.push_back(seg.min_key);
    probes.push_back(seg.max_key);
  }
  JsonObject lookups = run_point_lookups(reader, probes);
  std::cout << Json(JsonObject(lookups)).dump() << "\n";

  const std::uint32_t probe_bs =
      reader.manifest().segments.front().min_key.bs;
  std::uint64_t scan_pages = 0;
  std::uint64_t replay_pages = 0;
  JsonObject scan = run_scan(reader, probe_bs, &scan_pages);
  std::cout << Json(JsonObject(scan)).dump() << "\n";
  JsonObject replay = run_replay(reader, ingested, &replay_pages);
  std::cout << Json(JsonObject(replay)).dump() << "\n";

  // The index must prune: a one-BS scan cannot legitimately touch as many
  // pages as reading the whole store.
  if (scan_pages >= replay_pages) {
    std::cerr << "FATAL: single-BS scan read " << scan_pages
              << " pages, full replay " << replay_pages
              << " — the index pruned nothing\n";
    return 1;
  }

  JsonObject compaction = run_compaction();
  std::cout << Json(JsonObject(compaction)).dump() << "\n";

  report.emplace("ingest", Json(std::move(ingest)));
  report.emplace("point_lookup", Json(std::move(lookups)));
  report.emplace("scan", Json(std::move(scan)));
  report.emplace("replay", Json(std::move(replay)));
  report.emplace("compaction", Json(std::move(compaction)));
  mtd::write_file("BENCH_store.json", Json(std::move(report)).dump());
  std::cerr << "[bench] wrote BENCH_store.json\n";
  return mtd::bench::run_benchmarks(argc, argv);
}
